#include "eval/seminaive.h"

#include <algorithm>
#include <set>

#include "ast/special_predicates.h"

namespace factlog::eval {

namespace {

// Shared state for one bottom-up evaluation.
class Engine {
 public:
  Engine(const ast::Program& program, Database* db, const EvalOptions& opts)
      : program_(program), db_(db), opts_(opts) {}

  Result<EvalResult> Run() {
    FACTLOG_RETURN_IF_ERROR(Prepare());
    Status st = (opts_.strategy == Strategy::kSemiNaive) ? RunSemiNaive()
                                                         : RunNaive();
    FACTLOG_RETURN_IF_ERROR(st);
    return Finish();
  }

 private:
  struct PredState {
    std::unique_ptr<Relation> full;
    std::unique_ptr<Relation> delta;
    std::unique_ptr<Relation> next;
  };

  Status Prepare() {
    FACTLOG_RETURN_IF_ERROR(program_.Validate());
    idb_preds_ = program_.IdbPredicates();
    auto arities = program_.PredicateArities();
    // IDB relations adopt the database's storage layout so sharded
    // deployments keep one uniform partitioning end to end.
    const StorageOptions& storage = db_->storage_options();
    for (const std::string& p : idb_preds_) {
      size_t arity = arities.at(p);
      PredState st;
      st.full = std::make_unique<Relation>(arity, storage);
      st.delta = std::make_unique<Relation>(arity, storage);
      st.next = std::make_unique<Relation>(arity, storage);
      preds_.emplace(p, std::move(st));
    }
    plan_ = PlanForEvaluation(program_, *db_, opts_);
    rules_.reserve(program_.rules().size());
    for (size_t i = 0; i < program_.rules().size(); ++i) {
      FACTLOG_ASSIGN_OR_RETURN(
          CompiledRule cr,
          CompiledRule::Compile(program_.rules()[i], &db_->store(),
                                &plan_.rules[i]));
      rules_.push_back(std::move(cr));
    }
    rule_stats_.resize(rules_.size());
    return Status::OK();
  }

  bool IsIdb(const std::string& pred) const {
    return idb_preds_.count(pred) > 0;
  }

  // The extent of a body literal outside semi-naive delta handling.
  RelationView FullView(const CompiledAtom& lit) {
    if (lit.kind != LitKind::kRelation) return RelationView{};
    if (IsIdb(lit.predicate)) {
      return RelationView{preds_.at(lit.predicate).full.get(), nullptr};
    }
    // IDB relations are private to this evaluation; base relations may be
    // shared read-only with concurrent evaluations.
    return RelationView{db_->Find(lit.predicate), nullptr, opts_.shared_edb};
  }

  uint64_t TotalIdbFacts() const {
    uint64_t n = 0;
    for (const auto& [name, st] : preds_) {
      n += st.full->size() + st.delta->size() + st.next->size();
    }
    return n;
  }

  // Sink that inserts new facts into `target` unless already known in the
  // pred's full/delta extent. Returns the abort flag through `status_`.
  HeadSink MakeSink(size_t rule_index, const std::string& head_pred,
                    Relation* target, bool check_known) {
    return [this, rule_index, head_pred, target, check_known](
               const std::vector<ValueId>& row,
               const std::vector<FactKey>* premises) -> bool {
      if (check_known) {
        const PredState& st = preds_.at(head_pred);
        if (st.full->Contains(row.data()) || st.delta->Contains(row.data())) {
          return true;
        }
      }
      bool inserted = target->Insert(row);
      if (inserted) {
        if (opts_.track_provenance) {
          FactKey fact{head_pred, row};
          std::vector<FactKey> prem;
          if (premises != nullptr) prem = *premises;
          result_.mutable_provenance()->Record(
              fact, static_cast<int>(rule_index), prem);
        }
        if (TotalIdbFacts() > opts_.max_facts) {
          status_ = Status::ResourceExhausted(
              "fact budget exceeded (" + std::to_string(opts_.max_facts) +
              "); program may not terminate");
          return false;
        }
      }
      return true;
    };
  }

  Status RunSemiNaive() {
    // Iteration 0: rules without IDB body literals seed the deltas.
    for (size_t i = 0; i < rules_.size(); ++i) {
      const CompiledRule& rule = rules_[i];
      bool has_idb = false;
      for (const CompiledAtom& lit : rule.body()) {
        if (lit.kind == LitKind::kRelation && IsIdb(lit.predicate)) {
          has_idb = true;
          break;
        }
      }
      if (has_idb) continue;
      std::vector<RelationView> views;
      views.reserve(rule.body().size());
      for (const CompiledAtom& lit : rule.body()) views.push_back(FullView(lit));
      const std::string& head_pred = rule.head().predicate;
      Relation* delta = preds_.at(head_pred).delta.get();
      FACTLOG_RETURN_IF_ERROR(EnumerateRule(
          rule, &db_->store(), views, opts_.track_provenance, &rule_stats_[i],
          MakeSink(i, head_pred, delta, /*check_known=*/false)));
      FACTLOG_RETURN_IF_ERROR(status_);
    }

    while (true) {
      ++result_.mutable_stats()->iterations;
      if (result_.stats().iterations > opts_.max_iterations) {
        return Status::ResourceExhausted("iteration budget exceeded");
      }
      bool any_delta = false;
      for (const auto& [name, st] : preds_) {
        if (!st.delta->empty()) {
          any_delta = true;
          break;
        }
      }
      if (!any_delta) break;

      // Feedback: record this round's frontier sizes, then re-plan any rule
      // whose estimates have drifted past the threshold before enumerating.
      for (const auto& [name, st] : preds_) {
        if (!st.delta->empty()) {
          delta_sum_[name] += st.delta->size();
          ++delta_rounds_[name];
        }
      }
      MaybeReplan();

      for (size_t i = 0; i < rules_.size(); ++i) {
        const CompiledRule& rule = rules_[i];
        // One pass per IDB occurrence j: literal j ranges over delta,
        // literals before j over full ∪ delta (this round's view of F_i),
        // literals after j over full (F_{i-1}).
        for (size_t j = 0; j < rule.body().size(); ++j) {
          const CompiledAtom& lit_j = rule.body()[j];
          if (lit_j.kind != LitKind::kRelation || !IsIdb(lit_j.predicate)) {
            continue;
          }
          PredState& st_j = preds_.at(lit_j.predicate);
          if (st_j.delta->empty()) continue;

          std::vector<RelationView> views;
          views.reserve(rule.body().size());
          for (size_t k = 0; k < rule.body().size(); ++k) {
            const CompiledAtom& lit = rule.body()[k];
            if (lit.kind != LitKind::kRelation || !IsIdb(lit.predicate)) {
              views.push_back(FullView(lit));
              continue;
            }
            PredState& st = preds_.at(lit.predicate);
            if (k == j) {
              views.push_back(RelationView{st.delta.get(), nullptr});
            } else if (k < j) {
              views.push_back(RelationView{st.full.get(), st.delta.get()});
            } else {
              views.push_back(RelationView{st.full.get(), nullptr});
            }
          }
          const std::string& head_pred = rule.head().predicate;
          Relation* next = preds_.at(head_pred).next.get();
          FACTLOG_RETURN_IF_ERROR(EnumerateRule(
              rule, &db_->store(), views, opts_.track_provenance,
              &rule_stats_[i],
              MakeSink(i, head_pred, next, /*check_known=*/true)));
          FACTLOG_RETURN_IF_ERROR(status_);
        }
      }

      // Merge: full += delta; delta = next; next = fresh.
      for (auto& [name, st] : preds_) {
        st.full->Absorb(*st.delta);
        st.delta = std::move(st.next);
        st.next = std::make_unique<Relation>(st.full->arity(),
                                             st.full->storage_options());
      }
    }
    return Status::OK();
  }

  // The observed extent a body occurrence of `pred` ranges over this round:
  // the current delta for IDB predicates (their estimates are delta-based),
  // the live relation size for base predicates.
  uint64_t CurrentExtent(const std::string& pred) const {
    if (IsIdb(pred)) return preds_.at(pred).delta->size();
    const Relation* rel = db_->Find(pred);
    return rel == nullptr ? 0 : rel->size();
  }

  // Mid-fixpoint adaptivity: re-plan rules whose literal estimates drifted
  // past opts_.replan_threshold against what this iteration actually sees,
  // and recompile just those rules so subsequent passes enumerate in the new
  // order. Plans only direct enumeration, so the fixpoint's fact set is
  // unchanged. A re-plan that keeps the order still refreshes est_rows,
  // which re-arms the drift check instead of tripping it every round.
  void MaybeReplan() {
    if (opts_.replan_threshold <= 0 ||
        opts_.join_order != JoinOrder::kPlanned) {
      return;
    }
    plan::PlanOptions popts;
    bool popts_ready = false;
    for (size_t i = 0; i < rules_.size(); ++i) {
      const plan::JoinPlan& jp = plan_.rules[i];
      size_t relation_lits = 0;
      bool drifted = false;
      for (const plan::LiteralPlan& lp : jp.order) {
        if (!lp.is_relation) continue;
        ++relation_lits;
        const ast::Atom& lit = program_.rules()[i].body()[lp.body_index];
        if (ExtentDrifted(lp.est_rows, CurrentExtent(lit.predicate()),
                          opts_.replan_threshold)) {
          drifted = true;
        }
      }
      if (!drifted || relation_lits < 2) continue;
      if (!popts_ready) {
        for (const auto& [name, rel] : db_->relations()) {
          popts.extent_hints[name] = rel->size();
        }
        for (const auto& [name, st] : preds_) {
          popts.delta_preds.insert(name);
          popts.delta_hints[name] = static_cast<double>(st.delta->size());
          popts.extent_hints[name] = st.full->size() + st.delta->size();
        }
        popts_ready = true;
      }
      plan::JoinPlan fresh = plan::PlanRule(program_.rules()[i], popts);
      bool same_order = fresh.order.size() == jp.order.size();
      if (same_order) {
        for (size_t k = 0; k < fresh.order.size(); ++k) {
          if (fresh.order[k].body_index != jp.order[k].body_index) {
            same_order = false;
            break;
          }
        }
      }
      if (same_order) {
        plan_.rules[i] = std::move(fresh);  // refreshed estimates only
        continue;
      }
      // Flush observation counters under the old literal order, then swap in
      // the re-planned rule.
      DrainProbeObservations(rules_[i], plan_.rules[i], &rule_stats_[i],
                             &probe_obs_);
      Result<CompiledRule> cr = CompiledRule::Compile(
          program_.rules()[i], &db_->store(), &fresh);
      if (!cr.ok()) continue;  // keep the old plan; never fail the fixpoint
      plan_.rules[i] = std::move(fresh);
      rules_[i] = std::move(*cr);
      ++result_.mutable_stats()->replans;
    }
  }

  Status RunNaive() {
    while (true) {
      ++result_.mutable_stats()->iterations;
      if (result_.stats().iterations > opts_.max_iterations) {
        return Status::ResourceExhausted("iteration budget exceeded");
      }
      bool changed = false;
      for (size_t i = 0; i < rules_.size(); ++i) {
        const CompiledRule& rule = rules_[i];
        std::vector<RelationView> views;
        views.reserve(rule.body().size());
        for (const CompiledAtom& lit : rule.body()) {
          views.push_back(FullView(lit));
        }
        // Collect first: inserting into a relation being scanned would
        // invalidate the index buckets mid-enumeration.
        std::vector<std::vector<ValueId>> pending;
        std::vector<std::vector<FactKey>> pending_premises;
        FACTLOG_RETURN_IF_ERROR(EnumerateRule(
            rule, &db_->store(), views, opts_.track_provenance,
            &rule_stats_[i],
            [&](const std::vector<ValueId>& row,
                const std::vector<FactKey>* premises) {
              pending.push_back(row);
              if (premises != nullptr) pending_premises.push_back(*premises);
              return true;
            }));
        const std::string& head_pred = rule.head().predicate;
        Relation* full = preds_.at(head_pred).full.get();
        for (size_t p = 0; p < pending.size(); ++p) {
          if (full->Insert(pending[p])) {
            changed = true;
            if (opts_.track_provenance) {
              result_.mutable_provenance()->Record(
                  FactKey{head_pred, pending[p]}, static_cast<int>(i),
                  pending_premises.empty() ? std::vector<FactKey>{}
                                           : pending_premises[p]);
            }
          }
        }
        if (TotalIdbFacts() > opts_.max_facts) {
          return Status::ResourceExhausted("fact budget exceeded");
        }
      }
      if (!changed) break;
    }
    return Status::OK();
  }

  Result<EvalResult> Finish() {
    uint64_t total = 0;
    EvalStats* stats = result_.mutable_stats();
    for (size_t i = 0; i < rules_.size(); ++i) {
      DrainProbeObservations(rules_[i], plan_.rules[i], &rule_stats_[i],
                             &probe_obs_);
    }
    stats->probe_observations = std::move(probe_obs_);
    for (const auto& [name, sum] : delta_sum_) {
      stats->observed_delta_mean[name] =
          static_cast<double>(sum) / static_cast<double>(delta_rounds_[name]);
    }
    for (auto& [name, st] : preds_) {
      total += st.full->size();
      stats->observed_extents[name] = st.full->size();
      AccumulateShardFacts(*st.full, &stats->shard_facts);
      result_.mutable_idb()->emplace(name, std::move(st.full));
    }
    stats->total_facts = total;
    FoldRuleStats(rule_stats_, stats);
    return std::move(result_);
  }

  const ast::Program& program_;
  Database* db_;
  EvalOptions opts_;
  std::set<std::string> idb_preds_;
  std::map<std::string, PredState> preds_;
  plan::ProgramPlan plan_;
  std::vector<CompiledRule> rules_;
  std::vector<JoinStats> rule_stats_;  // index-aligned with rules_
  // Planner feedback accumulators (drained into EvalStats at Finish).
  std::map<std::string, uint64_t> delta_sum_;
  std::map<std::string, uint64_t> delta_rounds_;
  std::vector<plan::ProbeObservation> probe_obs_;
  EvalResult result_;
  Status status_ = Status::OK();
};

}  // namespace

plan::ProgramPlan PlanForEvaluation(const ast::Program& program,
                                    const Database& db,
                                    const EvalOptions& opts) {
  if (opts.join_order == JoinOrder::kLeftToRight) {
    plan::PlanOptions popts;
    popts.reorder = false;
    return plan::PlanProgram(program, std::move(popts));
  }
  if (opts.program_plan != nullptr && opts.program_plan->Compatible(program)) {
    return *opts.program_plan;
  }
  plan::PlanOptions popts;
  for (const auto& [name, rel] : db.relations()) {
    popts.extent_hints[name] = rel->size();
  }
  return plan::PlanProgram(program, std::move(popts));
}

Result<EvalResult> Evaluate(const ast::Program& program, Database* db,
                            const EvalOptions& opts) {
  Engine engine(program, db, opts);
  return engine.Run();
}

void FoldRuleStats(const std::vector<JoinStats>& rule_stats,
                   EvalStats* stats) {
  stats->rule_instantiations.resize(rule_stats.size(), 0);
  stats->rule_rows_matched.resize(rule_stats.size(), 0);
  for (size_t i = 0; i < rule_stats.size(); ++i) {
    stats->rule_instantiations[i] = rule_stats[i].instantiations;
    stats->rule_rows_matched[i] = rule_stats[i].rows_matched;
    stats->instantiations += rule_stats[i].instantiations;
    stats->rows_matched += rule_stats[i].rows_matched;
  }
}

bool ExtentDrifted(uint64_t est, uint64_t actual, double threshold) {
  const double a = static_cast<double>(est) + 1.0;
  const double b = static_cast<double>(actual) + 1.0;
  const double ratio = a > b ? a / b : b / a;
  return ratio > threshold;
}

void DrainProbeObservations(const CompiledRule& rule,
                            const plan::JoinPlan& rule_plan, JoinStats* stats,
                            std::vector<plan::ProbeObservation>* out) {
  const size_t n = std::min(stats->lit_probes.size(), rule.body().size());
  for (size_t k = 0; k < n; ++k) {
    if (stats->lit_probes[k] == 0) continue;
    const CompiledAtom& lit = rule.body()[k];
    if (lit.kind != LitKind::kRelation) {
      stats->lit_probes[k] = 0;
      stats->lit_matched[k] = 0;
      continue;
    }
    plan::ProbeObservation obs;
    obs.pred = lit.predicate;
    obs.arity = lit.args.size();
    // Compiled literal k is the k-th slot in plan order; its planned index
    // columns are the adornment the join probed with.
    if (k < rule_plan.order.size()) obs.bound_cols = rule_plan.order[k].index_cols;
    obs.probes = stats->lit_probes[k];
    obs.matched = stats->lit_matched[k];
    out->push_back(std::move(obs));
    stats->lit_probes[k] = 0;
    stats->lit_matched[k] = 0;
  }
}

void AccumulateShardFacts(const Relation& rel,
                          std::vector<uint64_t>* shard_facts) {
  if (shard_facts->size() < rel.shard_count()) {
    shard_facts->resize(rel.shard_count(), 0);
  }
  for (size_t s = 0; s < rel.shard_count(); ++s) {
    (*shard_facts)[s] += rel.shard(s).size();
  }
}

std::string AnswerSet::ToString(const ValueStore& values) const {
  std::string out;
  for (const auto& row : rows) {
    out += "{";
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ", ";
      if (i < vars.size()) out += vars[i] + " = ";
      out += values.ToString(row[i]);
    }
    out += "}\n";
  }
  return out;
}

Result<AnswerSet> ExtractAnswersFrom(const ast::Atom& query, Relation* rel,
                                     ValueStore* store, bool shared) {
  AnswerSet answers;
  answers.vars = query.DistinctVars();
  if (rel == nullptr) return answers;  // unknown predicate: no facts

  std::vector<ast::Term> head_args;
  head_args.reserve(answers.vars.size());
  for (const std::string& v : answers.vars) {
    head_args.push_back(ast::Term::Var(v));
  }
  ast::Rule probe(ast::Atom("__ans", std::move(head_args)), {query});
  FACTLOG_ASSIGN_OR_RETURN(CompiledRule rule,
                           CompiledRule::Compile(probe, store));

  std::set<std::vector<ValueId>> rows;
  JoinStats stats;
  FACTLOG_RETURN_IF_ERROR(EnumerateRule(
      rule, store, {RelationView{rel, nullptr, shared}}, false, &stats,
      [&rows](const std::vector<ValueId>& row, const std::vector<FactKey>*) {
        rows.insert(row);
        return true;
      }));
  answers.rows.assign(rows.begin(), rows.end());
  return answers;
}

Result<AnswerSet> ExtractAnswers(const ast::Atom& query, EvalResult* result,
                                 Database* db, bool shared_edb) {
  Relation* rel = result->Find(query.predicate());
  bool from_db = false;
  if (rel == nullptr) {
    rel = db->Find(query.predicate());
    from_db = true;
  }
  return ExtractAnswersFrom(query, rel, &db->store(),
                            shared_edb && from_db);
}

Result<AnswerSet> EvaluateQuery(const ast::Program& program,
                                const ast::Atom& query, Database* db,
                                const EvalOptions& opts, EvalStats* stats_out) {
  FACTLOG_ASSIGN_OR_RETURN(EvalResult result, Evaluate(program, db, opts));
  if (stats_out != nullptr) *stats_out = result.stats();
  return ExtractAnswers(query, &result, db, opts.shared_edb);
}

}  // namespace factlog::eval
