// An append-only container with stable addresses and lock-free indexed reads.
//
// The parallel execution subsystem (src/exec) shares one ValueStore across
// worker threads: workers read interned values on every join probe while the
// occasional new value (compound heads, affine/4 results) is interned under a
// mutex. A std::vector cannot back that pattern — push_back reallocates and
// invalidates concurrent reads — so the store keeps its elements in
// geometrically growing chunks that are never moved once allocated.
//
// Concurrency contract:
//  * Appends must be externally serialized (ValueStore's intern mutex).
//  * operator[] is safe concurrently with appends for any index the reader
//    obtained through a synchronizing operation (mutex, thread join, atomic)
//    that happened after the element was appended. Chunk pointers are
//    published with release stores and read with acquire loads, so the reader
//    always observes a fully constructed element.

#ifndef FACTLOG_EVAL_STABLE_STORE_H_
#define FACTLOG_EVAL_STABLE_STORE_H_

#include <atomic>
#include <cstddef>
#include <utility>

namespace factlog::eval {

template <typename T>
class StableStore {
 public:
  StableStore() {
    for (auto& c : chunks_) c.store(nullptr, std::memory_order_relaxed);
  }
  ~StableStore() {
    for (auto& c : chunks_) delete[] c.load(std::memory_order_relaxed);
  }
  StableStore(const StableStore&) = delete;
  StableStore& operator=(const StableStore&) = delete;

  size_t size() const { return size_.load(std::memory_order_acquire); }
  // NOLINTNEXTLINE(readability-container-size-empty): this IS empty().
  bool empty() const { return size() == 0; }

  const T& operator[](size_t i) const {
    size_t chunk, offset;
    Locate(i, &chunk, &offset);
    return chunks_[chunk].load(std::memory_order_acquire)[offset];
  }

  /// Mutable access. Caller must hold the (external) append lock.
  T& at(size_t i) {
    size_t chunk, offset;
    Locate(i, &chunk, &offset);
    return chunks_[chunk].load(std::memory_order_relaxed)[offset];
  }

  /// Appends a value and returns its index. Caller must hold the (external)
  /// append lock; concurrent readers stay valid.
  size_t push_back(T value) {
    size_t i = size_.load(std::memory_order_relaxed);
    size_t chunk, offset;
    Locate(i, &chunk, &offset);
    T* block = chunks_[chunk].load(std::memory_order_relaxed);
    if (block == nullptr) {
      block = new T[kBaseChunk << chunk];
      chunks_[chunk].store(block, std::memory_order_release);
    }
    block[offset] = std::move(value);
    size_.store(i + 1, std::memory_order_release);
    return i;
  }

 private:
  // Chunk c holds kBaseChunk * 2^c elements; the elements before it number
  // kBaseChunk * (2^c - 1). 26 chunks cover > 2^32 elements.
  static constexpr size_t kBaseChunk = 64;
  static constexpr size_t kNumChunks = 26;

  static void Locate(size_t i, size_t* chunk, size_t* offset) {
    size_t j = i / kBaseChunk + 1;
    size_t c = 63 - static_cast<size_t>(__builtin_clzll(j));
    *chunk = c;
    *offset = i - kBaseChunk * ((size_t{1} << c) - 1);
  }

  std::atomic<size_t> size_{0};
  std::atomic<T*> chunks_[kNumChunks];
};

}  // namespace factlog::eval

#endif  // FACTLOG_EVAL_STABLE_STORE_H_
