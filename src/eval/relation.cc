#include "eval/relation.h"

#include <cstring>
#include <utility>

namespace factlog::eval {

const std::vector<uint32_t> Relation::kEmptyRows;

size_t Relation::RowHash(const ValueId* row) const {
  size_t h = arity_;
  for (size_t i = 0; i < arity_; ++i) {
    h ^= std::hash<int32_t>()(row[i]) + 0x9e3779b97f4a7c15ULL + (h << 6) +
         (h >> 2);
  }
  return h;
}

void Relation::Reserve(size_t rows) {
  cells_.reserve(rows * arity_);
  dedup_.reserve(rows);
}

bool Relation::Insert(const std::vector<ValueId>& row) {
  return Insert(row.data());
}

bool Relation::Insert(std::vector<ValueId>&& row) {
  // Rows live in the flat cells_ array, so there is no buffer to steal; the
  // overload exists so temporaries bind without forcing an lvalue at the
  // call site.
  return Insert(row.data());
}

bool Relation::Insert(const ValueId* row) {
  size_t h = RowHash(row);
  auto& bucket = dedup_[h];
  for (uint32_t r : bucket) {
    if (std::memcmp(this->row(r), row, arity_ * sizeof(ValueId)) == 0) {
      return false;
    }
  }
  uint32_t new_row = static_cast<uint32_t>(num_rows_);
  bucket.push_back(new_row);
  cells_.insert(cells_.end(), row, row + arity_);
  ++num_rows_;
  for (auto& [cols, index] : indices_) {
    AddRowToIndex(cols, &index, new_row);
  }
  return true;
}

bool Relation::Contains(const ValueId* row) const {
  size_t h = RowHash(row);
  auto it = dedup_.find(h);
  if (it == dedup_.end()) return false;
  for (uint32_t r : it->second) {
    if (std::memcmp(this->row(r), row, arity_ * sizeof(ValueId)) == 0) {
      return true;
    }
  }
  return false;
}

void Relation::AddRowToIndex(const std::vector<int>& cols, Index* index,
                             uint32_t r) {
  key_scratch_.clear();
  const ValueId* cells = row(r);
  for (int c : cols) key_scratch_.push_back(cells[c]);
  // try_emplace copies the scratch key only when the bucket is new.
  auto [it, inserted] = index->buckets.try_emplace(key_scratch_);
  (void)inserted;
  it->second.push_back(r);
}

void Relation::EnsureIndex(const std::vector<int>& cols) {
  auto [it, inserted] = indices_.try_emplace(cols);
  if (!inserted) return;
  Index& index = it->second;
  for (uint32_t r = 0; r < num_rows_; ++r) {
    AddRowToIndex(cols, &index, r);
  }
}

const std::vector<uint32_t>* Relation::FindIndexed(
    const std::vector<int>& cols, const std::vector<ValueId>& key) const {
  auto it = indices_.find(cols);
  if (it == indices_.end()) return nullptr;
  auto bucket = it->second.buckets.find(key);
  if (bucket == it->second.buckets.end()) return &kEmptyRows;
  return &bucket->second;
}

const std::vector<uint32_t>& Relation::Lookup(const std::vector<int>& cols,
                                              const std::vector<ValueId>& key) {
  EnsureIndex(cols);
  const std::vector<uint32_t>* rows = FindIndexed(cols, key);
  return rows == nullptr ? kEmptyRows : *rows;
}

void Relation::Clear() {
  num_rows_ = 0;
  cells_.clear();
  dedup_.clear();
  indices_.clear();
}

size_t Relation::Absorb(const Relation& other) {
  Reserve(num_rows_ + other.size());
  size_t inserted = 0;
  for (size_t r = 0; r < other.size(); ++r) {
    if (Insert(other.row(r))) ++inserted;
  }
  return inserted;
}

}  // namespace factlog::eval
