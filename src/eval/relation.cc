#include "eval/relation.h"

#include <cstring>

namespace factlog::eval {

const std::vector<uint32_t> Relation::kEmptyRows;

size_t Relation::RowHash(const ValueId* row) const {
  size_t h = arity_;
  for (size_t i = 0; i < arity_; ++i) {
    h ^= std::hash<int32_t>()(row[i]) + 0x9e3779b97f4a7c15ULL + (h << 6) +
         (h >> 2);
  }
  return h;
}

bool Relation::Insert(const std::vector<ValueId>& row) {
  return Insert(row.data());
}

bool Relation::Insert(const ValueId* row) {
  size_t h = RowHash(row);
  auto& bucket = dedup_[h];
  for (uint32_t r : bucket) {
    if (std::memcmp(this->row(r), row, arity_ * sizeof(ValueId)) == 0) {
      return false;
    }
  }
  uint32_t new_row = static_cast<uint32_t>(num_rows_);
  bucket.push_back(new_row);
  cells_.insert(cells_.end(), row, row + arity_);
  ++num_rows_;
  for (auto& [cols, index] : indices_) {
    AddRowToIndex(cols, &index, new_row);
  }
  return true;
}

bool Relation::Contains(const ValueId* row) const {
  size_t h = RowHash(row);
  auto it = dedup_.find(h);
  if (it == dedup_.end()) return false;
  for (uint32_t r : it->second) {
    if (std::memcmp(this->row(r), row, arity_ * sizeof(ValueId)) == 0) {
      return true;
    }
  }
  return false;
}

void Relation::AddRowToIndex(const std::vector<int>& cols, Index* index,
                             uint32_t r) {
  std::vector<ValueId> key;
  key.reserve(cols.size());
  const ValueId* cells = row(r);
  for (int c : cols) key.push_back(cells[c]);
  index->buckets[std::move(key)].push_back(r);
}

const std::vector<uint32_t>& Relation::Lookup(const std::vector<int>& cols,
                                              const std::vector<ValueId>& key) {
  auto [it, inserted] = indices_.try_emplace(cols);
  Index& index = it->second;
  if (inserted) {
    for (uint32_t r = 0; r < num_rows_; ++r) {
      AddRowToIndex(cols, &index, r);
    }
  }
  auto bucket = index.buckets.find(key);
  if (bucket == index.buckets.end()) return kEmptyRows;
  return bucket->second;
}

void Relation::Clear() {
  num_rows_ = 0;
  cells_.clear();
  dedup_.clear();
  indices_.clear();
}

void Relation::Absorb(const Relation& other) {
  for (size_t r = 0; r < other.size(); ++r) {
    Insert(other.row(r));
  }
}

}  // namespace factlog::eval
