#include "eval/relation.h"

#include <array>
#include <cstdio>
#include <cstring>
#include <utility>

#include "storage/paged_store.h"

namespace factlog::eval {

namespace {

inline uint64_t PackLoc(size_t shard, size_t local) {
  return (static_cast<uint64_t>(shard) << 32) | static_cast<uint32_t>(local);
}

}  // namespace

const std::vector<uint32_t> Relation::kEmptyRows;

Relation::Relation(size_t arity, const StorageOptions& storage)
    : arity_(arity) {
  if (arity_ > 0) {
    for (int c : storage.partition_cols) {
      if (c >= 0 && static_cast<size_t>(c) < arity_) part_cols_.push_back(c);
    }
    if (part_cols_.empty()) part_cols_.push_back(0);
  }
  // Arity-0 relations hold at most one row; sharding them buys nothing.
  if (storage.num_shards > 1 && arity_ > 0) {
    shards_.reserve(storage.num_shards);
    for (size_t s = 0; s < storage.num_shards; ++s) {
      shards_.push_back(std::make_shared<Relation>(arity_));
    }
  }
}

Relation::~Relation() = default;

Relation::Relation(const Relation& other)
    : arity_(other.arity_),
      num_rows_(other.num_rows_),
      cells_(other.cells_),
      dedup_(other.dedup_),
      indices_(other.indices_),
      counts_enabled_(other.counts_enabled_),
      counts_(other.counts_),
      needs_sync_(other.needs_sync_),
      version_(other.version_),
      part_cols_(other.part_cols_),
      shards_(other.shards_),
      row_locs_(other.row_locs_) {
  // A paged source keeps its page store; the clone gets RAM cells. Row order
  // is preserved, so the copied dedup table and indices stay valid.
  if (other.paged_ != nullptr) {
    cells_.resize(num_rows_ * arity_);
    for (size_t r = 0; r < num_rows_; ++r) {
      Status st = other.paged_->CopyRow(r, cells_.data() + r * arity_);
      if (!st.ok()) {
        std::fprintf(stderr, "factlog: paged row read failed in copy: %s\n",
                     st.ToString().c_str());
      }
    }
  }
}

std::shared_ptr<Relation> Relation::FrozenCopy() const {
  // The copy ctor is private (shared_ptr<Relation>(new ...) instead of
  // make_shared): it shares the shard pointers, so the copy is O(outer
  // bookkeeping) in sharded mode and a deep copy only for flat relations.
  return std::shared_ptr<Relation>(new Relation(*this));
}

void Relation::DetachShard(size_t s) {
  if (shards_[s].use_count() > 1) {
    shards_[s] = std::shared_ptr<Relation>(new Relation(*shards_[s]));
  }
}

size_t Relation::RowHash(const ValueId* row) const {
  size_t h = arity_;
  for (size_t i = 0; i < arity_; ++i) {
    h ^= std::hash<int32_t>()(row[i]) + 0x9e3779b97f4a7c15ULL + (h << 6) +
         (h >> 2);
  }
  return h;
}

size_t Relation::ShardOf(const ValueId* row) const {
  if (shards_.empty()) return 0;
  // FNV-1a over the partition columns; only used to spread rows across
  // shards, so any deterministic mix works. Must stay a pure function of the
  // row values so identically-configured relations route rows alike.
  uint64_t h = 1469598103934665603ULL;
  for (int c : part_cols_) {
    h = (h ^ static_cast<uint64_t>(static_cast<uint32_t>(row[c]))) *
        1099511628211ULL;
  }
  return static_cast<size_t>(h % shards_.size());
}

void Relation::Reserve(size_t rows) {
  if (shards_.empty()) {
    if (paged_ == nullptr) cells_.reserve(rows * arity_);
    dedup_.reserve(rows);
    return;
  }
  row_locs_.reserve(rows);
  size_t per_shard = rows / shards_.size() + 1;
  for (auto& sh : shards_) {
    // A shard still shared with a frozen copy must not be touched; the hint
    // is skipped rather than forcing a clone — the first insert detaches.
    if (sh.use_count() == 1) sh->Reserve(per_shard);
  }
}

bool Relation::Insert(const std::vector<ValueId>& row) {
  return Insert(row.data());
}

bool Relation::Insert(std::vector<ValueId>&& row) {
  // Rows live in the flat cells_ array, so there is no buffer to steal; the
  // overload exists so temporaries bind without forcing an lvalue at the
  // call site.
  return Insert(row.data());
}

bool Relation::Insert(const ValueId* row) {
  if (shards_.empty()) return InsertFlat(row);
  return InsertIntoShard(ShardOf(row), row);
}

bool Relation::InsertFlat(const ValueId* row) {
  if (paged_ != nullptr && row != insert_scratch_.data()) {
    // The dedup probe below calls this->row(r), which on a paged relation
    // recycles copy-out ring slots — including, eventually, the one `row`
    // may point into. Park the incoming row in a member buffer first.
    insert_scratch_.assign(row, row + arity_);
    row = insert_scratch_.data();
  }
  size_t h = RowHash(row);
  auto& bucket = dedup_[h];
  for (uint32_t r : bucket) {
    // Arity-0 rows are all equal (and may be null pointers — never handed
    // to memcmp).
    if (arity_ == 0 ||
        std::memcmp(this->row(r), row, arity_ * sizeof(ValueId)) == 0) {
      return false;
    }
  }
  uint32_t new_row = static_cast<uint32_t>(num_rows_);
  bucket.push_back(new_row);
  if (arity_ > 0) AppendRowStorage(row);
  ++num_rows_;
  ++version_;
  if (counts_enabled_) counts_.push_back(1);
  for (auto& [cols, index] : indices_) {
    AddRowToIndex(cols, &index, new_row);
  }
  return true;
}

void Relation::NoteShardInsert(size_t s) {
  uint32_t global = static_cast<uint32_t>(num_rows_);
  ++num_rows_;
  ++version_;
  // After an erase the global order is already stale and will be rebuilt
  // wholesale by SyncShards; appending to it would record bogus locations.
  if (needs_sync_) return;
  row_locs_.push_back(PackLoc(s, shards_[s]->size() - 1));
  for (auto& [cols, index] : indices_) {
    AddRowToIndex(cols, &index, global);
  }
}

void Relation::NoteShardErase() {
  --num_rows_;
  ++version_;
  needs_sync_ = true;
  // Combined indices hold global row ids that no longer resolve; drop them
  // and let SyncShards/EnsureIndex rebuild on demand.
  indices_.clear();
}

bool Relation::InsertIntoShard(size_t s, const ValueId* row) {
  if (shards_[s].use_count() > 1) {
    // COW: don't clone a still-snapshotted shard for a duplicate row. The
    // extra Contains probe only runs on shared shards, keeping the fixpoint
    // hot path (exclusively owned shards) unchanged.
    if (shards_[s]->Contains(row)) return false;
    DetachShard(s);
  }
  if (!shards_[s]->InsertFlat(row)) return false;
  NoteShardInsert(s);
  return true;
}

int64_t Relation::FindRowFlat(const ValueId* row) const {
  if (paged_ != nullptr && arity_ > 0) {
    // The probe loop's this->row(r) calls recycle ring slots; `row` may be
    // one. Stabilize into a thread-local (not the ring) before probing.
    thread_local std::vector<ValueId> stable;
    if (row != stable.data()) {
      stable.assign(row, row + arity_);
      row = stable.data();
    }
  }
  auto it = dedup_.find(RowHash(row));
  if (it == dedup_.end()) return -1;
  for (uint32_t r : it->second) {
    if (arity_ == 0 ||
        std::memcmp(this->row(r), row, arity_ * sizeof(ValueId)) == 0) {
      return static_cast<int64_t>(r);
    }
  }
  return -1;
}

namespace {

// Removes one occurrence of `id` from `ids` (swap-pop; order is irrelevant
// for dedup buckets and index posting lists).
void RemoveRowId(std::vector<uint32_t>* ids, uint32_t id) {
  for (size_t i = 0; i < ids->size(); ++i) {
    if ((*ids)[i] == id) {
      (*ids)[i] = ids->back();
      ids->pop_back();
      return;
    }
  }
}

void ReplaceRowId(std::vector<uint32_t>* ids, uint32_t from, uint32_t to) {
  for (uint32_t& id : *ids) {
    if (id == from) {
      id = to;
      return;
    }
  }
}

}  // namespace

void Relation::RemoveRowFromIndexes(uint32_t r) {
  const ValueId* cells = row(r);
  for (auto& [cols, index] : indices_) {
    key_scratch_.clear();
    for (int c : cols) key_scratch_.push_back(cells[c]);
    auto it = index.buckets.find(key_scratch_);
    if (it == index.buckets.end()) continue;
    RemoveRowId(&it->second, r);
    if (it->second.empty()) index.buckets.erase(it);
  }
}

void Relation::RenumberRowInIndexes(uint32_t from, uint32_t to) {
  const ValueId* cells = row(from);
  for (auto& [cols, index] : indices_) {
    key_scratch_.clear();
    for (int c : cols) key_scratch_.push_back(cells[c]);
    auto it = index.buckets.find(key_scratch_);
    if (it != index.buckets.end()) ReplaceRowId(&it->second, from, to);
  }
}

bool Relation::EraseFlat(const ValueId* row) {
  if (paged_ != nullptr && arity_ > 0 && row != erase_scratch_.data()) {
    // `row` is read again after FindRowFlat's probe loop (RowHash below);
    // stabilize it out of the copy-out ring for the whole erase.
    erase_scratch_.assign(row, row + arity_);
    row = erase_scratch_.data();
  }
  int64_t found = FindRowFlat(row);
  if (found < 0) return false;
  ++version_;
  uint32_t r = static_cast<uint32_t>(found);
  uint32_t last = static_cast<uint32_t>(num_rows_ - 1);

  // Unhook row r from the dedup table and every built index while its cells
  // are still intact.
  size_t h = RowHash(row);
  auto ded = dedup_.find(h);
  RemoveRowId(&ded->second, r);
  if (ded->second.empty()) dedup_.erase(ded);
  RemoveRowFromIndexes(r);

  if (r != last) {
    // The last row moves into slot r: renumber it everywhere, then copy its
    // cells (the index/dedup keys are value-based, so only the id changes).
    const ValueId* last_cells = this->row(last);
    if (paged_ != nullptr) {
      // RenumberRowInIndexes re-reads row(last), recycling ring slots.
      move_scratch_.assign(last_cells, last_cells + arity_);
      last_cells = move_scratch_.data();
    }
    auto lded = dedup_.find(RowHash(last_cells));
    ReplaceRowId(&lded->second, last, r);
    RenumberRowInIndexes(last, r);
    if (arity_ > 0) WriteRowStorage(r, last_cells);
    if (counts_enabled_) counts_[r] = counts_[last];
  }
  if (arity_ > 0) PopBackStorage();
  if (counts_enabled_) counts_.pop_back();
  --num_rows_;
  return true;
}

bool Relation::Erase(const ValueId* row) {
  if (shards_.empty()) return EraseFlat(row);
  size_t s = ShardOf(row);
  if (shards_[s].use_count() > 1) {
    // COW: don't clone a still-snapshotted shard for an absent row.
    if (!shards_[s]->Contains(row)) return false;
    DetachShard(s);
  }
  if (!shards_[s]->EraseFlat(row)) return false;
  NoteShardErase();
  return true;
}

void Relation::EnableSupportCounts() {
  counts_enabled_ = true;
  ++version_;
  if (shards_.empty()) {
    // Counted relations are write-hot delta/view state; keep them in RAM
    // (AttachPagedStore refuses them for the same reason).
    if (paged_ != nullptr) MaterializeToRam();
    counts_.assign(num_rows_, 0);
    return;
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    DetachShard(s);
    shards_[s]->EnableSupportCounts();
  }
}

int64_t Relation::SupportOf(const ValueId* row) const {
  if (!shards_.empty()) return shards_[ShardOf(row)]->SupportOf(row);
  if (!counts_enabled_) return Contains(row) ? 1 : 0;
  int64_t r = FindRowFlat(row);
  return r < 0 ? 0 : counts_[static_cast<size_t>(r)];
}

int64_t Relation::AddSupport(const ValueId* row, int64_t delta) {
  if (!shards_.empty()) {
    size_t s = ShardOf(row);
    DetachShard(s);
    Relation& sh = *shards_[s];
    size_t before = sh.size();
    int64_t count = sh.AddSupport(row, delta);
    if (sh.size() > before) {
      NoteShardInsert(s);
    } else if (sh.size() < before) {
      NoteShardErase();
    }
    return count;
  }
  // Auto-enabling on an empty relation lets delta buffers skip the explicit
  // call; on a populated one the caller must have enabled (and rebuilt)
  // counts already, or the zeroed counts would misreport support.
  if (!counts_enabled_) EnableSupportCounts();
  int64_t r = FindRowFlat(row);
  if (r < 0) {
    if (delta <= 0) return 0;
    InsertFlat(row);
    counts_.back() = delta;
    return delta;
  }
  int64_t count = counts_[static_cast<size_t>(r)] + delta;
  if (count <= 0) {
    EraseFlat(row);
    return 0;
  }
  counts_[static_cast<size_t>(r)] = count;
  return count;
}

bool Relation::Contains(const ValueId* row) const {
  const Relation* r = shards_.empty() ? this : shards_[ShardOf(row)].get();
  if (r->paged_ != nullptr && arity_ > 0) {
    // Same ring hazard as FindRowFlat: the probe loop below recycles
    // copy-out slots `row` may point into.
    thread_local std::vector<ValueId> stable;
    if (row != stable.data()) {
      stable.assign(row, row + arity_);
      row = stable.data();
    }
  }
  size_t h = r->RowHash(row);
  auto it = r->dedup_.find(h);
  if (it == r->dedup_.end()) return false;
  for (uint32_t c : it->second) {
    if (arity_ == 0 ||
        std::memcmp(r->row(c), row, arity_ * sizeof(ValueId)) == 0) {
      return true;
    }
  }
  return false;
}

void Relation::AddRowToIndex(const std::vector<int>& cols, Index* index,
                             uint32_t r) {
  key_scratch_.clear();
  const ValueId* cells = row(r);
  for (int c : cols) key_scratch_.push_back(cells[c]);
  // try_emplace copies the scratch key only when the bucket is new.
  auto [it, inserted] = index->buckets.try_emplace(key_scratch_);
  (void)inserted;
  it->second.push_back(r);
}

void Relation::EnsureIndex(const std::vector<int>& cols) {
  auto [it, inserted] = indices_.try_emplace(cols);
  if (!inserted) return;
  ++version_;  // frozen copies must re-copy to pick up the new index
  Index& index = it->second;
  for (uint32_t r = 0; r < num_rows_; ++r) {
    AddRowToIndex(cols, &index, r);
  }
}

void Relation::EnsureShardIndexes(const std::vector<int>& cols) {
  if (shards_.empty()) {
    EnsureIndex(cols);
    return;
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    // Detach only shards that lack the index — building mutates the shard;
    // shards that already carry it stay shared with any frozen copy.
    if (shards_[s]->HasIndex(cols)) continue;
    DetachShard(s);
    shards_[s]->EnsureIndex(cols);
  }
}

const std::vector<uint32_t>* Relation::FindIndexed(
    const std::vector<int>& cols, const std::vector<ValueId>& key) const {
  auto it = indices_.find(cols);
  if (it == indices_.end()) return nullptr;
  auto bucket = it->second.buckets.find(key);
  if (bucket == it->second.buckets.end()) return &kEmptyRows;
  return &bucket->second;
}

const std::vector<uint32_t>& Relation::Lookup(const std::vector<int>& cols,
                                              const std::vector<ValueId>& key) {
  EnsureIndex(cols);
  const std::vector<uint32_t>* rows = FindIndexed(cols, key);
  return rows == nullptr ? kEmptyRows : *rows;
}

void Relation::Clear() {
  num_rows_ = 0;
  ++version_;
  cells_.clear();
  if (paged_ != nullptr) {
    Status st = paged_->Clear();
    if (!st.ok()) {
      std::fprintf(stderr, "factlog: paged clear failed: %s\n",
                   st.ToString().c_str());
    }
  }
  dedup_.clear();
  indices_.clear();
  row_locs_.clear();
  counts_.clear();
  needs_sync_ = false;
  for (auto& sh : shards_) {
    if (sh.use_count() > 1) {
      // Still referenced by a frozen copy: replace instead of clearing.
      sh = std::make_shared<Relation>(arity_);
    } else {
      sh->Clear();
    }
  }
}

size_t Relation::Absorb(const Relation& other) {
  if (!shards_.empty() && other.shards_.size() == shards_.size() &&
      other.part_cols_ == part_cols_) {
    // Same partition function on both sides: every row of other's shard s
    // belongs in our shard s, so skip the route hash. Reads other's shards
    // directly, so `other` need not be synced.
    size_t inserted = 0;
    row_locs_.reserve(num_rows_ + other.num_rows_);
    for (size_t s = 0; s < shards_.size(); ++s) {
      const Relation& src = *other.shards_[s];
      if (src.empty()) continue;
      DetachShard(s);  // rows are coming; detach once instead of per row
      shards_[s]->Reserve(shards_[s]->size() + src.size());
      const bool src_paged = src.paged_ != nullptr;
      for (size_t r = 0; r < src.size(); ++r) {
        const ValueId* src_row = src.row(r);
        if (src_paged) {
          // src.row(r) points into the copy-out ring; the insert's own row()
          // probes would recycle it. Hold it in a stable buffer instead.
          move_scratch_.assign(src_row, src_row + arity_);
          src_row = move_scratch_.data();
        }
        if (InsertIntoShard(s, src_row)) ++inserted;
      }
    }
    return inserted;
  }
  Reserve(num_rows_ + other.size());
  size_t inserted = 0;
  const bool other_paged = other.is_paged();
  for (size_t r = 0; r < other.size(); ++r) {
    const ValueId* src_row = other.row(r);
    if (other_paged) {
      move_scratch_.assign(src_row, src_row + arity_);
      src_row = move_scratch_.data();
    }
    if (Insert(src_row)) ++inserted;
  }
  return inserted;
}

void Relation::MergeShard(size_t s, const Relation& rows) {
  if (shards_.empty()) {
    Absorb(rows);
    return;
  }
  DetachShard(s);
  shards_[s]->Absorb(rows);
}

// ---- Paged-store plumbing ---------------------------------------------------

const ValueId* Relation::PagedRow(size_t idx) const {
  // Per-thread copy-out ring: each call fills the next slot, so a thread can
  // hold up to kRingSlots live row() pointers across *all* paged relations.
  // The evaluators consume each row before fetching the next (one live
  // pointer); the probe loops that hold one across many row() calls
  // stabilize it first. Each slot is its own vector so growing one slot for
  // a wider relation never invalidates pointers handed out from the others.
  constexpr size_t kRingSlots = 16;
  thread_local std::array<std::vector<ValueId>, kRingSlots> ring;
  thread_local size_t next_slot = 0;
  std::vector<ValueId>& slot = ring[next_slot];
  next_slot = (next_slot + 1) % kRingSlots;
  if (slot.size() < arity_) slot.resize(arity_);
  Status st = paged_->CopyRow(idx, slot.data());
  if (!st.ok()) {
    // No recovery path here (callers hold raw pointers); zero the row and
    // complain loudly rather than hand out garbage.
    std::fprintf(stderr, "factlog: paged row read failed: %s\n",
                 st.ToString().c_str());
    std::fill(slot.begin(), slot.end(), 0);
  }
  return slot.data();
}

void Relation::AppendRowStorage(const ValueId* row) {
  if (paged_ != nullptr) {
    Status st = paged_->Append(row);
    if (st.ok()) return;
    std::fprintf(stderr,
                 "factlog: paged append failed (%s); relation falls back to "
                 "RAM\n",
                 st.ToString().c_str());
    MaterializeToRam();  // copies the num_rows_ existing rows; row is new
  }
  cells_.insert(cells_.end(), row, row + arity_);
}

void Relation::WriteRowStorage(uint32_t r, const ValueId* src) {
  if (paged_ != nullptr) {
    Status st = paged_->WriteRow(r, src);
    if (st.ok()) return;
    std::fprintf(stderr,
                 "factlog: paged write failed (%s); relation falls back to "
                 "RAM\n",
                 st.ToString().c_str());
    MaterializeToRam();
  }
  // memmove: in RAM mode `src` may alias cells_ (the swapped last row).
  std::memmove(&cells_[r * arity_], src, arity_ * sizeof(ValueId));
}

void Relation::PopBackStorage() {
  if (paged_ != nullptr) {
    Status st = paged_->PopBack();
    if (st.ok()) return;
    std::fprintf(stderr,
                 "factlog: paged pop failed (%s); relation falls back to "
                 "RAM\n",
                 st.ToString().c_str());
    MaterializeToRam();
  }
  cells_.resize((num_rows_ - 1) * arity_);
}

void Relation::RebuildDedup() {
  dedup_.clear();
  dedup_.reserve(num_rows_);
  for (uint32_t r = 0; r < static_cast<uint32_t>(num_rows_); ++r) {
    dedup_[RowHash(this->row(r))].push_back(r);
  }
}

bool Relation::AttachPagedStore(std::shared_ptr<storage::TableSpace> space) {
  if (arity_ == 0 || counts_enabled_) return false;
  if (!shards_.empty()) {
    bool all = true;
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (shards_[s]->paged_ != nullptr) continue;
      DetachShard(s);  // never page a shard a frozen copy still reads
      all = shards_[s]->AttachPagedStore(space) && all;
    }
    return all;
  }
  if (paged_ != nullptr) return true;
  if (!storage::PagedRowStore::RowFits(arity_ * sizeof(ValueId))) return false;
  auto store = std::make_unique<storage::PagedRowStore>(
      std::move(space), arity_ * sizeof(ValueId));
  for (size_t r = 0; r < num_rows_; ++r) {
    Status st = store->Append(cells_.data() + r * arity_);
    if (!st.ok()) {
      // Stay in RAM; the partially built store frees its pages on destroy.
      std::fprintf(stderr, "factlog: paging relation failed: %s\n",
                   st.ToString().c_str());
      return false;
    }
  }
  cells_.clear();
  cells_.shrink_to_fit();
  paged_ = std::move(store);
  return true;
}

bool Relation::is_paged() const {
  if (shards_.empty()) return paged_ != nullptr;
  for (const auto& sh : shards_) {
    if (sh->paged_ != nullptr) return true;
  }
  return false;
}

void Relation::MaterializeToRam() {
  if (shards_.empty()) {
    if (paged_ == nullptr) return;
    cells_.resize(num_rows_ * arity_);
    for (size_t r = 0; r < num_rows_; ++r) {
      Status st = paged_->CopyRow(r, cells_.data() + r * arity_);
      if (!st.ok()) {
        std::fprintf(stderr, "factlog: paged row read failed: %s\n",
                     st.ToString().c_str());
      }
    }
    paged_.reset();  // frees the chain (pending) via the store's dtor
    return;
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (shards_[s]->paged_ == nullptr) continue;
    DetachShard(s);
    shards_[s]->MaterializeToRam();
  }
}

Status Relation::AdoptPagedChains(
    std::shared_ptr<storage::TableSpace> space,
    const std::vector<std::vector<uint32_t>>& chains,
    const std::vector<uint64_t>& row_counts) {
  if (num_rows_ != 0) {
    return Status::Internal("AdoptPagedChains: relation not empty");
  }
  if (chains.size() != shard_count() || row_counts.size() != shard_count()) {
    return Status::Internal("AdoptPagedChains: shard count mismatch");
  }
  if (shards_.empty()) {
    num_rows_ = static_cast<size_t>(row_counts[0]);
    if (arity_ > 0 && num_rows_ > 0) {
      auto store = std::make_unique<storage::PagedRowStore>(
          std::move(space), arity_ * sizeof(ValueId));
      store->Restore(std::vector<storage::PageId>(chains[0].begin(),
                                                  chains[0].end()),
                     num_rows_);
      paged_ = std::move(store);
    }
    RebuildDedup();
    ++version_;
    return Status::OK();
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    FACTLOG_RETURN_IF_ERROR(
        shards_[s]->AdoptPagedChains(space, {chains[s]}, {row_counts[s]}));
  }
  needs_sync_ = true;
  SyncShards();  // rebuild row_locs_ and num_rows_ from the adopted shards
  return Status::OK();
}

void Relation::SealPages() {
  if (paged_ != nullptr) paged_->SealAll();
  for (auto& sh : shards_) {
    if (sh->paged_ != nullptr) sh->paged_->SealAll();
  }
}

void Relation::DumpPagedChains(std::vector<std::vector<uint32_t>>* chains,
                               std::vector<uint64_t>* rows) const {
  chains->clear();
  rows->clear();
  if (shards_.empty()) {
    chains->push_back(paged_ != nullptr
                          ? std::vector<uint32_t>(paged_->chain().begin(),
                                                  paged_->chain().end())
                          : std::vector<uint32_t>{});
    rows->push_back(num_rows_);
    return;
  }
  for (const auto& sh : shards_) {
    chains->push_back(sh->paged_ != nullptr
                          ? std::vector<uint32_t>(sh->paged_->chain().begin(),
                                                  sh->paged_->chain().end())
                          : std::vector<uint32_t>{});
    rows->push_back(sh->size());
  }
}

void Relation::SyncShards() {
  if (shards_.empty()) return;
  size_t total = 0;
  for (const auto& sh : shards_) total += sh->size();
  // MergeShard leaves the counts unequal; Erase balances them but raises the
  // flag (local row ids shifted under the stale location table).
  if (total == num_rows_ && !needs_sync_) return;
  // Rows merged shard-directly have no global order yet; rebuild it
  // shard-major. Combined indices hold the old global ids, so drop them and
  // let EnsureIndex rebuild on demand.
  row_locs_.clear();
  row_locs_.reserve(total);
  for (size_t s = 0; s < shards_.size(); ++s) {
    for (size_t local = 0; local < shards_[s]->size(); ++local) {
      row_locs_.push_back(PackLoc(s, local));
    }
  }
  num_rows_ = total;
  ++version_;  // MergeShard deltas become visible here, not per merge
  indices_.clear();
  needs_sync_ = false;
}

}  // namespace factlog::eval
