#include "eval/relation.h"

#include <cstring>
#include <utility>

namespace factlog::eval {

namespace {

inline uint64_t PackLoc(size_t shard, size_t local) {
  return (static_cast<uint64_t>(shard) << 32) | static_cast<uint32_t>(local);
}

}  // namespace

const std::vector<uint32_t> Relation::kEmptyRows;

Relation::Relation(size_t arity, const StorageOptions& storage)
    : arity_(arity) {
  if (arity_ > 0) {
    for (int c : storage.partition_cols) {
      if (c >= 0 && static_cast<size_t>(c) < arity_) part_cols_.push_back(c);
    }
    if (part_cols_.empty()) part_cols_.push_back(0);
  }
  // Arity-0 relations hold at most one row; sharding them buys nothing.
  if (storage.num_shards > 1 && arity_ > 0) {
    shards_.reserve(storage.num_shards);
    for (size_t s = 0; s < storage.num_shards; ++s) {
      shards_.push_back(std::make_shared<Relation>(arity_));
    }
  }
}

std::shared_ptr<Relation> Relation::FrozenCopy() const {
  // The copy ctor is private (shared_ptr<Relation>(new ...) instead of
  // make_shared): it shares the shard pointers, so the copy is O(outer
  // bookkeeping) in sharded mode and a deep copy only for flat relations.
  return std::shared_ptr<Relation>(new Relation(*this));
}

void Relation::DetachShard(size_t s) {
  if (shards_[s].use_count() > 1) {
    shards_[s] = std::shared_ptr<Relation>(new Relation(*shards_[s]));
  }
}

size_t Relation::RowHash(const ValueId* row) const {
  size_t h = arity_;
  for (size_t i = 0; i < arity_; ++i) {
    h ^= std::hash<int32_t>()(row[i]) + 0x9e3779b97f4a7c15ULL + (h << 6) +
         (h >> 2);
  }
  return h;
}

size_t Relation::ShardOf(const ValueId* row) const {
  if (shards_.empty()) return 0;
  // FNV-1a over the partition columns; only used to spread rows across
  // shards, so any deterministic mix works. Must stay a pure function of the
  // row values so identically-configured relations route rows alike.
  uint64_t h = 1469598103934665603ULL;
  for (int c : part_cols_) {
    h = (h ^ static_cast<uint64_t>(static_cast<uint32_t>(row[c]))) *
        1099511628211ULL;
  }
  return static_cast<size_t>(h % shards_.size());
}

void Relation::Reserve(size_t rows) {
  if (shards_.empty()) {
    cells_.reserve(rows * arity_);
    dedup_.reserve(rows);
    return;
  }
  row_locs_.reserve(rows);
  size_t per_shard = rows / shards_.size() + 1;
  for (auto& sh : shards_) {
    // A shard still shared with a frozen copy must not be touched; the hint
    // is skipped rather than forcing a clone — the first insert detaches.
    if (sh.use_count() == 1) sh->Reserve(per_shard);
  }
}

bool Relation::Insert(const std::vector<ValueId>& row) {
  return Insert(row.data());
}

bool Relation::Insert(std::vector<ValueId>&& row) {
  // Rows live in the flat cells_ array, so there is no buffer to steal; the
  // overload exists so temporaries bind without forcing an lvalue at the
  // call site.
  return Insert(row.data());
}

bool Relation::Insert(const ValueId* row) {
  if (shards_.empty()) return InsertFlat(row);
  return InsertIntoShard(ShardOf(row), row);
}

bool Relation::InsertFlat(const ValueId* row) {
  size_t h = RowHash(row);
  auto& bucket = dedup_[h];
  for (uint32_t r : bucket) {
    // Arity-0 rows are all equal (and may be null pointers — never handed
    // to memcmp).
    if (arity_ == 0 ||
        std::memcmp(this->row(r), row, arity_ * sizeof(ValueId)) == 0) {
      return false;
    }
  }
  uint32_t new_row = static_cast<uint32_t>(num_rows_);
  bucket.push_back(new_row);
  if (arity_ > 0) cells_.insert(cells_.end(), row, row + arity_);
  ++num_rows_;
  ++version_;
  if (counts_enabled_) counts_.push_back(1);
  for (auto& [cols, index] : indices_) {
    AddRowToIndex(cols, &index, new_row);
  }
  return true;
}

void Relation::NoteShardInsert(size_t s) {
  uint32_t global = static_cast<uint32_t>(num_rows_);
  ++num_rows_;
  ++version_;
  // After an erase the global order is already stale and will be rebuilt
  // wholesale by SyncShards; appending to it would record bogus locations.
  if (needs_sync_) return;
  row_locs_.push_back(PackLoc(s, shards_[s]->size() - 1));
  for (auto& [cols, index] : indices_) {
    AddRowToIndex(cols, &index, global);
  }
}

void Relation::NoteShardErase() {
  --num_rows_;
  ++version_;
  needs_sync_ = true;
  // Combined indices hold global row ids that no longer resolve; drop them
  // and let SyncShards/EnsureIndex rebuild on demand.
  indices_.clear();
}

bool Relation::InsertIntoShard(size_t s, const ValueId* row) {
  if (shards_[s].use_count() > 1) {
    // COW: don't clone a still-snapshotted shard for a duplicate row. The
    // extra Contains probe only runs on shared shards, keeping the fixpoint
    // hot path (exclusively owned shards) unchanged.
    if (shards_[s]->Contains(row)) return false;
    DetachShard(s);
  }
  if (!shards_[s]->InsertFlat(row)) return false;
  NoteShardInsert(s);
  return true;
}

int64_t Relation::FindRowFlat(const ValueId* row) const {
  auto it = dedup_.find(RowHash(row));
  if (it == dedup_.end()) return -1;
  for (uint32_t r : it->second) {
    if (arity_ == 0 ||
        std::memcmp(this->row(r), row, arity_ * sizeof(ValueId)) == 0) {
      return static_cast<int64_t>(r);
    }
  }
  return -1;
}

namespace {

// Removes one occurrence of `id` from `ids` (swap-pop; order is irrelevant
// for dedup buckets and index posting lists).
void RemoveRowId(std::vector<uint32_t>* ids, uint32_t id) {
  for (size_t i = 0; i < ids->size(); ++i) {
    if ((*ids)[i] == id) {
      (*ids)[i] = ids->back();
      ids->pop_back();
      return;
    }
  }
}

void ReplaceRowId(std::vector<uint32_t>* ids, uint32_t from, uint32_t to) {
  for (uint32_t& id : *ids) {
    if (id == from) {
      id = to;
      return;
    }
  }
}

}  // namespace

void Relation::RemoveRowFromIndexes(uint32_t r) {
  const ValueId* cells = row(r);
  for (auto& [cols, index] : indices_) {
    key_scratch_.clear();
    for (int c : cols) key_scratch_.push_back(cells[c]);
    auto it = index.buckets.find(key_scratch_);
    if (it == index.buckets.end()) continue;
    RemoveRowId(&it->second, r);
    if (it->second.empty()) index.buckets.erase(it);
  }
}

void Relation::RenumberRowInIndexes(uint32_t from, uint32_t to) {
  const ValueId* cells = row(from);
  for (auto& [cols, index] : indices_) {
    key_scratch_.clear();
    for (int c : cols) key_scratch_.push_back(cells[c]);
    auto it = index.buckets.find(key_scratch_);
    if (it != index.buckets.end()) ReplaceRowId(&it->second, from, to);
  }
}

bool Relation::EraseFlat(const ValueId* row) {
  int64_t found = FindRowFlat(row);
  if (found < 0) return false;
  ++version_;
  uint32_t r = static_cast<uint32_t>(found);
  uint32_t last = static_cast<uint32_t>(num_rows_ - 1);

  // Unhook row r from the dedup table and every built index while its cells
  // are still intact.
  size_t h = RowHash(row);
  auto ded = dedup_.find(h);
  RemoveRowId(&ded->second, r);
  if (ded->second.empty()) dedup_.erase(ded);
  RemoveRowFromIndexes(r);

  if (r != last) {
    // The last row moves into slot r: renumber it everywhere, then copy its
    // cells (the index/dedup keys are value-based, so only the id changes).
    const ValueId* last_cells = this->row(last);
    auto lded = dedup_.find(RowHash(last_cells));
    ReplaceRowId(&lded->second, last, r);
    RenumberRowInIndexes(last, r);
    if (arity_ > 0) {
      std::memmove(&cells_[r * arity_], last_cells, arity_ * sizeof(ValueId));
    }
    if (counts_enabled_) counts_[r] = counts_[last];
  }
  if (arity_ > 0) cells_.resize((num_rows_ - 1) * arity_);
  if (counts_enabled_) counts_.pop_back();
  --num_rows_;
  return true;
}

bool Relation::Erase(const ValueId* row) {
  if (shards_.empty()) return EraseFlat(row);
  size_t s = ShardOf(row);
  if (shards_[s].use_count() > 1) {
    // COW: don't clone a still-snapshotted shard for an absent row.
    if (!shards_[s]->Contains(row)) return false;
    DetachShard(s);
  }
  if (!shards_[s]->EraseFlat(row)) return false;
  NoteShardErase();
  return true;
}

void Relation::EnableSupportCounts() {
  counts_enabled_ = true;
  ++version_;
  if (shards_.empty()) {
    counts_.assign(num_rows_, 0);
    return;
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    DetachShard(s);
    shards_[s]->EnableSupportCounts();
  }
}

int64_t Relation::SupportOf(const ValueId* row) const {
  if (!shards_.empty()) return shards_[ShardOf(row)]->SupportOf(row);
  if (!counts_enabled_) return Contains(row) ? 1 : 0;
  int64_t r = FindRowFlat(row);
  return r < 0 ? 0 : counts_[static_cast<size_t>(r)];
}

int64_t Relation::AddSupport(const ValueId* row, int64_t delta) {
  if (!shards_.empty()) {
    size_t s = ShardOf(row);
    DetachShard(s);
    Relation& sh = *shards_[s];
    size_t before = sh.size();
    int64_t count = sh.AddSupport(row, delta);
    if (sh.size() > before) {
      NoteShardInsert(s);
    } else if (sh.size() < before) {
      NoteShardErase();
    }
    return count;
  }
  // Auto-enabling on an empty relation lets delta buffers skip the explicit
  // call; on a populated one the caller must have enabled (and rebuilt)
  // counts already, or the zeroed counts would misreport support.
  if (!counts_enabled_) EnableSupportCounts();
  int64_t r = FindRowFlat(row);
  if (r < 0) {
    if (delta <= 0) return 0;
    InsertFlat(row);
    counts_.back() = delta;
    return delta;
  }
  int64_t count = counts_[static_cast<size_t>(r)] + delta;
  if (count <= 0) {
    EraseFlat(row);
    return 0;
  }
  counts_[static_cast<size_t>(r)] = count;
  return count;
}

bool Relation::Contains(const ValueId* row) const {
  const Relation* r = shards_.empty() ? this : shards_[ShardOf(row)].get();
  size_t h = r->RowHash(row);
  auto it = r->dedup_.find(h);
  if (it == r->dedup_.end()) return false;
  for (uint32_t c : it->second) {
    if (arity_ == 0 ||
        std::memcmp(r->row(c), row, arity_ * sizeof(ValueId)) == 0) {
      return true;
    }
  }
  return false;
}

void Relation::AddRowToIndex(const std::vector<int>& cols, Index* index,
                             uint32_t r) {
  key_scratch_.clear();
  const ValueId* cells = row(r);
  for (int c : cols) key_scratch_.push_back(cells[c]);
  // try_emplace copies the scratch key only when the bucket is new.
  auto [it, inserted] = index->buckets.try_emplace(key_scratch_);
  (void)inserted;
  it->second.push_back(r);
}

void Relation::EnsureIndex(const std::vector<int>& cols) {
  auto [it, inserted] = indices_.try_emplace(cols);
  if (!inserted) return;
  ++version_;  // frozen copies must re-copy to pick up the new index
  Index& index = it->second;
  for (uint32_t r = 0; r < num_rows_; ++r) {
    AddRowToIndex(cols, &index, r);
  }
}

void Relation::EnsureShardIndexes(const std::vector<int>& cols) {
  if (shards_.empty()) {
    EnsureIndex(cols);
    return;
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    // Detach only shards that lack the index — building mutates the shard;
    // shards that already carry it stay shared with any frozen copy.
    if (shards_[s]->HasIndex(cols)) continue;
    DetachShard(s);
    shards_[s]->EnsureIndex(cols);
  }
}

const std::vector<uint32_t>* Relation::FindIndexed(
    const std::vector<int>& cols, const std::vector<ValueId>& key) const {
  auto it = indices_.find(cols);
  if (it == indices_.end()) return nullptr;
  auto bucket = it->second.buckets.find(key);
  if (bucket == it->second.buckets.end()) return &kEmptyRows;
  return &bucket->second;
}

const std::vector<uint32_t>& Relation::Lookup(const std::vector<int>& cols,
                                              const std::vector<ValueId>& key) {
  EnsureIndex(cols);
  const std::vector<uint32_t>* rows = FindIndexed(cols, key);
  return rows == nullptr ? kEmptyRows : *rows;
}

void Relation::Clear() {
  num_rows_ = 0;
  ++version_;
  cells_.clear();
  dedup_.clear();
  indices_.clear();
  row_locs_.clear();
  counts_.clear();
  needs_sync_ = false;
  for (auto& sh : shards_) {
    if (sh.use_count() > 1) {
      // Still referenced by a frozen copy: replace instead of clearing.
      sh = std::make_shared<Relation>(arity_);
    } else {
      sh->Clear();
    }
  }
}

size_t Relation::Absorb(const Relation& other) {
  if (!shards_.empty() && other.shards_.size() == shards_.size() &&
      other.part_cols_ == part_cols_) {
    // Same partition function on both sides: every row of other's shard s
    // belongs in our shard s, so skip the route hash. Reads other's shards
    // directly, so `other` need not be synced.
    size_t inserted = 0;
    row_locs_.reserve(num_rows_ + other.num_rows_);
    for (size_t s = 0; s < shards_.size(); ++s) {
      const Relation& src = *other.shards_[s];
      if (src.size() == 0) continue;
      DetachShard(s);  // rows are coming; detach once instead of per row
      shards_[s]->Reserve(shards_[s]->size() + src.size());
      for (size_t r = 0; r < src.size(); ++r) {
        if (InsertIntoShard(s, src.row(r))) ++inserted;
      }
    }
    return inserted;
  }
  Reserve(num_rows_ + other.size());
  size_t inserted = 0;
  for (size_t r = 0; r < other.size(); ++r) {
    if (Insert(other.row(r))) ++inserted;
  }
  return inserted;
}

void Relation::MergeShard(size_t s, const Relation& rows) {
  if (shards_.empty()) {
    Absorb(rows);
    return;
  }
  DetachShard(s);
  shards_[s]->Absorb(rows);
}

void Relation::SyncShards() {
  if (shards_.empty()) return;
  size_t total = 0;
  for (const auto& sh : shards_) total += sh->size();
  // MergeShard leaves the counts unequal; Erase balances them but raises the
  // flag (local row ids shifted under the stale location table).
  if (total == num_rows_ && !needs_sync_) return;
  // Rows merged shard-directly have no global order yet; rebuild it
  // shard-major. Combined indices hold the old global ids, so drop them and
  // let EnsureIndex rebuild on demand.
  row_locs_.clear();
  row_locs_.reserve(total);
  for (size_t s = 0; s < shards_.size(); ++s) {
    for (size_t local = 0; local < shards_[s]->size(); ++local) {
      row_locs_.push_back(PackLoc(s, local));
    }
  }
  num_rows_ = total;
  ++version_;  // MergeShard deltas become visible here, not per merge
  indices_.clear();
  needs_sync_ = false;
}

}  // namespace factlog::eval
