// Incremental view maintenance: counting deltas for non-recursive strata,
// DRed (delete-and-rederive) for recursive ones.
//
// The engine's whole design amortizes one-time work — like the paper's
// multi-prime argument reduction, where a cheap precomputation pays for
// itself across every evaluation. A MaterializedView extends that economy to
// the data: instead of re-running the fixpoint after every EDB change, the
// view keeps the materialized IDB relations of a compiled program correct
// under fact insertions *and deletions* with delta-sized work.
//
// Algorithm, per strongly connected component of the predicate dependency
// graph (processed dependencies-first):
//
//   * Non-recursive predicates use *counting*: every fact carries its number
//     of derivations (Relation support counts). An EDB delta is propagated
//     with the standard occurrence decomposition — for each rule and each
//     body occurrence j of a changed predicate, literal j ranges over the
//     delta, literals before j over the new state, literals after j over the
//     old state — adding (insert) or subtracting (delete) one support per
//     instantiation. A fact dies exactly when its count reaches zero, so
//     deletions never require re-evaluation.
//
//   * Recursive SCCs maintain a *derivation edge store* (the complete
//     derivation hypergraph of the SCC's facts, eval::DerivationEdgeStore):
//     insertions run a seeded semi-naive fixpoint restricted to the SCC and
//     record one edge per new instantiation. Every fact carries a
//     well-founded *rank* (minimal derivation height), and a derivation is
//     *supporting* when all its premises rank strictly below its head —
//     cyclic support never counts. Deletion is a support cascade: killing an
//     edge decrements its head's supporting count, a head reaching zero is
//     tentatively dead and kills its own uses, so the cascade only touches
//     facts that actually lost a derivation (delta-sized even for random
//     deletes in dense graphs, where a reachability cone would span nearly
//     everything). A final least-fixpoint rescue keeps any tentatively dead
//     fact with a derivation avoiding every seed and dead fact — longer
//     surviving paths are kept in place without row churn, while
//     mutually-supporting ungrounded cycles stay dead. The store is rebuilt
//     (and ranks recomputed exactly) from a full rule sweep at
//     Build/Restore and kept exact by every insertion pass; if it ever
//     exceeds its edge budget it is dropped and the view falls back to
//     classic *DRed* (over-delete everything derivable, then re-derive
//     candidates with a guard-literal-bounded fixpoint).
//
// Deltas propagate over the shard seam: when a pass's driving extent is
// sharded and large enough, the enumeration fans out across the engine's
// exec::ThreadPool — one task per delta shard, probing pre-built frozen
// indices — and set-semantics passes merge worker buffers shard-to-shard
// under per-(predicate, shard) locks (exec::MergeBufferLocked), exactly the
// structure of the parallel fixpoint.
//
// A view is single-writer: Apply* and Answer must be externally serialized
// (api::Engine routes them through its mutation guard). A failed propagation
// (budget exhaustion, join error) poisons the view: the maintained state may
// be inconsistent and every later call fails with kFailedPrecondition.

#ifndef FACTLOG_INC_INCREMENTAL_H_
#define FACTLOG_INC_INCREMENTAL_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "ast/program.h"
#include "common/status.h"
#include "eval/database.h"
#include "eval/provenance.h"
#include "eval/rule_eval.h"
#include "eval/seminaive.h"
#include "exec/thread_pool.h"
#include "plan/join_plan.h"

namespace factlog::inc {

struct IncrementalOptions {
  /// Budgets shared with the evaluators. `max_facts` bounds the maintained
  /// IDB plus in-flight deltas, `max_iterations` bounds every internal
  /// fixpoint (insertion, over-deletion, re-derivation). track_provenance
  /// must be false: maintenance does not update derivation trees.
  eval::EvalOptions eval;
  /// Optional pool for shard-parallel delta passes. nullptr keeps
  /// propagation fully sequential.
  exec::ThreadPool* pool = nullptr;
  /// Driving extents with fewer rows than this run as a single inline task
  /// even when sharded; fanning out a tiny delta costs more than it buys.
  size_t min_rows_to_partition = 64;
  /// Edge budget for the derivation edge store backing slice deletions in
  /// recursive SCCs. When the live hypergraph would exceed it, the store is
  /// dropped permanently and deletion falls back to classic DRed. 0 disables
  /// edge tracking entirely.
  uint64_t max_derivation_edges = uint64_t{1} << 22;
};

/// Maintenance counters. Used both cumulatively (ViewStats below) and as the
/// per-propagation delta of the most recent Apply* call.
struct ViewUpdateStats {
  uint64_t inserts_applied = 0;  // EDB delta rows propagated as insertions
  uint64_t deletes_applied = 0;  // EDB delta rows propagated as deletions
  uint64_t idb_inserted = 0;     // IDB facts added across all predicates
  uint64_t idb_deleted = 0;      // IDB facts removed (post-rederivation)
  uint64_t support_updates = 0;  // counting: derivation-count adjustments
  uint64_t overdeleted = 0;      // tentative deletions (slice cascade or DRed)
  uint64_t rederived = 0;        // tentative deletions rescinded (rescued)
  uint64_t delta_passes = 0;     // (rule, occurrence) delta passes run
  uint64_t cone_input = 0;       // slice: facts touched by the support cascade
  uint64_t cone_pruned = 0;      // slice: cone facts kept (surviving support)
  uint64_t edges_added = 0;      // derivation edges recorded
  uint64_t edges_removed = 0;    // derivation edges retired

  /// Field-wise difference (this - before), for per-update snapshots.
  ViewUpdateStats Since(const ViewUpdateStats& before) const;
};

/// Cumulative maintenance counters of one view, plus the per-propagation
/// snapshot of the most recent Apply* call and edge-store gauges.
struct ViewStats : ViewUpdateStats {
  /// Counter deltas of the most recent ApplyInsert/ApplyDelete propagation
  /// (zeroed-out no-op calls excluded), so callers can assert cone sizes for
  /// a single delete without diffing cumulative counters themselves.
  ViewUpdateStats last_update;
  /// Live edge-store gauges (sizes, not deltas).
  uint64_t edge_store_facts = 0;
  uint64_t edge_store_edges = 0;
  bool edge_store_active = false;
  /// True once the edge budget was exceeded and the store was dropped;
  /// recursive deletions use the DRed fallback from then on.
  bool edge_store_dropped = false;
};

/// One maintained predicate's relation, dumped by value: the persistence
/// layer writes these into the checkpoint meta file and feeds them back to
/// Restore so reopening a database skips the from-scratch evaluation.
struct ViewPredState {
  std::string pred;
  uint32_t arity = 0;
  bool counts_enabled = false;
  uint64_t num_rows = 0;
  /// num_rows * arity ValueIds, valid against the database's value store.
  std::vector<eval::ValueId> rows;
  /// Per-row derivation counts; empty unless counts_enabled.
  std::vector<int64_t> row_counts;
};

/// The materialized IDB of one compiled program, kept incrementally correct
/// under EDB deltas. Holds a pointer to the engine's database (the EDB it
/// joins deltas against); the database must outlive the view.
class MaterializedView {
 public:
  /// Evaluates `program` against `db` from scratch (on `opts.pool` when
  /// given) and prepares the maintenance state: SCC strata, rederivation
  /// rules, and exact support counts for every non-recursive predicate.
  static Result<std::unique_ptr<MaterializedView>> Build(
      const ast::Program& program, eval::Database* db,
      const IncrementalOptions& opts);

  /// Rebuilds a view from checkpointed state: compiles the same maintenance
  /// machinery as Build but fills the maintained relations (and their
  /// support counts) from `preds` instead of evaluating. `db` must hold the
  /// EDB state the dump was taken against, or later deltas will maintain an
  /// inconsistent view.
  static Result<std::unique_ptr<MaterializedView>> Restore(
      const ast::Program& program, eval::Database* db,
      const IncrementalOptions& opts, const std::vector<ViewPredState>& preds);

  /// Dumps every maintained relation by value (syncing sharded relations
  /// first), in a form Restore accepts.
  std::vector<ViewPredState> DumpState();

  MaterializedView(const MaterializedView&) = delete;
  MaterializedView& operator=(const MaterializedView&) = delete;

  /// Propagates the insertion of `delta` rows into EDB predicate `pred`.
  /// Contract: `db` must NOT yet contain the rows (the caller inserts them
  /// after every view has propagated), and `delta` must be disjoint from the
  /// stored relation. Deltas into predicates the program defines by rules
  /// are ignored — the evaluators never read same-named EDB facts either.
  Status ApplyInsert(const std::string& pred, const eval::Relation& delta);

  /// Propagates the deletion of `delta` rows from EDB predicate `pred`.
  /// Contract: the rows must already be erased from `db` (old state =
  /// stored relation ∪ delta).
  Status ApplyDelete(const std::string& pred, const eval::Relation& delta);

  /// Answers a query from the maintained relations (eval::ExtractAnswers
  /// semantics). The query's constants must match the ones the program was
  /// compiled with — api::Engine guarantees this by keying views on the plan
  /// cache key.
  Result<eval::AnswerSet> Answer(const ast::Atom& query);

  /// A frozen copy of the maintained relation that answers this view's query
  /// — the program query's predicate — with the answer-probe index (the
  /// query's ground argument positions) pre-built, for snapshot serving:
  /// readers extract answers from the copy with ExtractAnswersFrom while the
  /// writer keeps mutating the live relation (copy-on-write shards keep the
  /// copy frozen). Cached per relation version, so calls between deltas
  /// share one copy. Must be called from the single writer, like Apply*.
  /// Null when the view is poisoned, has no query, or the query predicate is
  /// not maintained.
  std::shared_ptr<eval::Relation> FrozenAnswer();

  /// The maintained relation for `pred` (nullptr when not an IDB predicate).
  const eval::Relation* Find(const std::string& pred) const {
    return result_.Find(pred);
  }
  const std::map<std::string, std::unique_ptr<eval::Relation>>& idb() const {
    return result_.idb();
  }
  /// Total maintained IDB facts.
  uint64_t total_facts() const;

  const ast::Program& program() const { return program_; }
  const ViewStats& stats() const { return stats_; }
  /// Drains the delta passes' accumulated per-literal probe counters into
  /// planner observations (plan::StatsCatalog::ObserveBatch feedback). The
  /// counters reset, so calls between propagations yield disjoint batches.
  /// Must be called from the single writer, like Apply*.
  std::vector<plan::ProbeObservation> DrainObservations();
  /// True once a failed propagation left the maintained state inconsistent;
  /// every subsequent Apply*/Answer call fails with kFailedPrecondition.
  bool poisoned() const { return poisoned_; }

  /// True while the derivation edge store is live (recursive SCCs present,
  /// edge tracking enabled, budget never exceeded) — i.e. recursive
  /// deletions take the slice path.
  bool edge_guided() const { return edges_ != nullptr; }
  /// Renders a derivation tree for `fact` from the edge store: recursive
  /// facts expand through a recorded derivation, EDB and counting-maintained
  /// facts are leaves (the latter annotated with their support count).
  /// Answers "why <fact>" in the CLI. Must be called from the single writer
  /// (interning the atom's constants may mutate the value store).
  Result<std::string> Explain(const ast::Atom& fact);

 private:
  struct PredInfo {
    size_t scc = 0;
    /// Member of a recursive SCC (DRed); false selects counting.
    bool recursive = false;
    /// Rule indices whose head is this predicate.
    std::vector<size_t> rules;
    /// One lock per storage shard of the maintained relation, for the
    /// parallel merge path.
    std::unique_ptr<std::mutex[]> shard_locks;
  };

  using DeltaMap = std::map<std::string, const eval::Relation*>;
  /// Pass sinks see each head row plus, when the pass tracks premises for
  /// edge recording, the instantiation's body facts in source order.
  using RowSink = std::function<void(const std::vector<eval::ValueId>&,
                                     const std::vector<eval::FactKey>*)>;

  MaterializedView(const ast::Program& program, eval::Database* db,
                   const IncrementalOptions& opts)
      : program_(program), db_(db), opts_(opts) {}

  /// Non-null `restore` replaces the from-scratch evaluation with the dumped
  /// relations (and skips the support-count rebuild — the dump carries exact
  /// counts).
  Status Init(const std::vector<ViewPredState>* restore = nullptr);
  void ComputeSccs();
  Status RebuildSupportCounts();
  /// (Re)builds the derivation edge store with one full sweep of every
  /// recursive-head rule over the final evaluated state — the same mechanism
  /// for Build and Restore (checkpoints persist rows, not edges).
  Status RebuildDerivationEdges();
  /// Interns (pred, row) and its premises and adds one derivation edge.
  /// No-op when the store is gone; flips the overflow flag on budget breach.
  void RecordEdge(const std::string& pred, const std::vector<eval::ValueId>& row,
                  size_t rule_index,
                  const std::vector<eval::FactKey>* premises);
  /// Drops an overflowed store (permanently — it may be missing edges) and
  /// refreshes the edge gauges in stats_.
  void SettleEdgeStore();

  /// The current stored extent of `pred`: maintained IDB relation or EDB
  /// relation from the database (nullptr when the predicate has no facts).
  eval::Relation* CurrentRel(const std::string& pred);
  bool IsIdb(const std::string& pred) const {
    return idb_preds_.count(pred) > 0;
  }
  bool SccAffected(const std::vector<std::string>& scc,
                   const DeltaMap& delta) const;
  uint64_t InFlight(const std::vector<std::unique_ptr<eval::Relation>>& owned)
      const;

  Status PropagateInsert(const std::string& pred,
                         const eval::Relation& delta);
  Status PropagateDelete(const std::string& pred,
                         const eval::Relation& delta);
  Status InsertCounting(const std::string& pred, DeltaMap* delta,
                        std::vector<std::unique_ptr<eval::Relation>>* owned);
  Status DeleteCounting(const std::string& pred, DeltaMap* delta,
                        std::vector<std::unique_ptr<eval::Relation>>* owned);
  Status InsertRecursive(const std::vector<std::string>& scc, DeltaMap* delta,
                         std::vector<std::unique_ptr<eval::Relation>>* owned);
  Status DeleteRecursive(const std::vector<std::string>& scc, DeltaMap* delta,
                         std::vector<std::unique_ptr<eval::Relation>>* owned);
  /// Slice deletion along derivation edges (requires a live edge store):
  /// forward cone from the deleted facts, least-fixpoint safety pruning,
  /// erase of the unsupported remainder, edge retirement.
  Status DeleteRecursiveSliced(
      const std::vector<std::string>& scc, DeltaMap* delta,
      std::vector<std::unique_ptr<eval::Relation>>* owned);
  /// Classic DRed (over-delete + guarded re-derivation), the fallback when
  /// the edge store is disabled or was dropped over budget.
  Status DeleteRecursiveDRed(
      const std::vector<std::string>& scc, DeltaMap* delta,
      std::vector<std::unique_ptr<eval::Relation>>* owned);

  /// Runs one delta pass of `rules_[rule_index]` with body occurrence `occ`
  /// ranging over `delta` — per shard across the pool when the extent is
  /// sharded and large, inline otherwise. Every emitted head row reaches
  /// `apply` on the calling thread (multiplicity preserved), so sinks may
  /// mutate unsynchronized state. With `premises` set, workers also carry
  /// each instantiation's body facts to the sink (edge recording).
  Status RunPassCollect(size_t rule_index,
                        std::vector<eval::RelationView> views, size_t occ,
                        const eval::Relation* delta, bool premises,
                        const RowSink& apply);

  /// Set-semantics variant: rows contained in any of `known` are dropped,
  /// survivors land in `target` (sharded like the head's relation). On the
  /// parallel path workers deduplicate against the frozen `known` extents
  /// into thread-local buffers and merge shard-to-shard under `locks`.
  Status RunPassInto(size_t rule_index, std::vector<eval::RelationView> views,
                     size_t occ, const eval::Relation* delta,
                     const std::vector<const eval::Relation*>& known,
                     eval::Relation* target, std::mutex* locks);

  /// Pre-builds every index the pass probes and marks views shared; returns
  /// true when the pass should fan out across the pool.
  bool PreparePass(size_t rule_index, std::vector<eval::RelationView>* views,
                   size_t occ, const eval::Relation* delta);

  /// Accumulates one pass's join counters into rule_join_stats_.
  void FoldJoinStats(size_t rule_index, const eval::JoinStats& js);

  ast::Program program_;
  eval::Database* db_;
  IncrementalOptions opts_;

  std::set<std::string> idb_preds_;
  /// The program's join plan (engine-supplied or computed at Build); the
  /// compiled rules_ bodies are laid out in its order.
  plan::ProgramPlan plan_;
  std::vector<eval::CompiledRule> rules_;
  /// Per-rule, per-compiled-literal probe columns, read off the plan's
  /// declared index requirements.
  std::vector<std::vector<std::vector<int>>> plan_cols_;
  /// Per-rule join counters accumulated across delta passes (the per-literal
  /// vectors feed DrainObservations).
  std::vector<eval::JoinStats> rule_join_stats_;
  /// Rederivation variant of each recursive-head rule: the body prefixed
  /// with a candidate guard literal over the head's arguments (pinned
  /// first), the rest planned through plan::PlanRule's greedy cost model
  /// (absent for counting-maintained heads).
  std::vector<std::unique_ptr<eval::CompiledRule>> rederive_rules_;
  /// Delta-driven rederivation variants, one per same-SCC body occurrence:
  /// the driving occurrence pinned first, the candidate guard and the rest
  /// planned greedily (the guard typically lands as an indexed filter on the
  /// bound head columns), keeping later rederivation rounds delta-sized
  /// instead of rescanning every remaining candidate. Keyed by the
  /// occurrence's source body index.
  std::vector<std::map<size_t, std::unique_ptr<eval::CompiledRule>>>
      rederive_occ_rules_;
  std::map<std::string, PredInfo> pred_info_;
  /// Collision-free prefix of the candidate guard predicates: the guard for
  /// predicate p is named cand_prefix_ + p.
  std::string cand_prefix_;
  /// SCCs of the IDB dependency graph, dependencies first.
  std::vector<std::vector<std::string>> sccs_;

  eval::EvalResult result_;
  /// Derivation hypergraph of the recursive SCCs; null when the program has
  /// none, tracking is disabled, or the budget was exceeded (then
  /// stats_.edge_store_dropped is set and deletions fall back to DRed).
  std::unique_ptr<eval::DerivationEdgeStore> edges_;
  /// Set when a RecordEdge hit the budget mid-pass; SettleEdgeStore drops
  /// the (now incomplete) store at the end of the propagation.
  bool edges_overflowed_ = false;
  ViewStats stats_;
  bool poisoned_ = false;
  /// FrozenAnswer cache: the frozen copy and the relation version it froze.
  std::shared_ptr<eval::Relation> frozen_answer_;
  uint64_t frozen_answer_version_ = 0;
};

}  // namespace factlog::inc

#endif  // FACTLOG_INC_INCREMENTAL_H_
