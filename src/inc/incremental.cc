#include "inc/incremental.h"

#include <algorithm>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "ast/special_predicates.h"
#include "exec/parallel_seminaive.h"

namespace factlog::inc {

namespace {

using eval::CompiledAtom;
using eval::CompiledRule;
using eval::JoinStats;
using eval::LitKind;
using eval::Relation;
using eval::RelationView;
using eval::DerivationEdgeStore;
using eval::ValueId;

}  // namespace

ViewUpdateStats ViewUpdateStats::Since(const ViewUpdateStats& before) const {
  ViewUpdateStats d;
  d.inserts_applied = inserts_applied - before.inserts_applied;
  d.deletes_applied = deletes_applied - before.deletes_applied;
  d.idb_inserted = idb_inserted - before.idb_inserted;
  d.idb_deleted = idb_deleted - before.idb_deleted;
  d.support_updates = support_updates - before.support_updates;
  d.overdeleted = overdeleted - before.overdeleted;
  d.rederived = rederived - before.rederived;
  d.delta_passes = delta_passes - before.delta_passes;
  d.cone_input = cone_input - before.cone_input;
  d.cone_pruned = cone_pruned - before.cone_pruned;
  d.edges_added = edges_added - before.edges_added;
  d.edges_removed = edges_removed - before.edges_removed;
  return d;
}

// ---------------------------------------------------------------- building --

Result<std::unique_ptr<MaterializedView>> MaterializedView::Build(
    const ast::Program& program, eval::Database* db,
    const IncrementalOptions& opts) {
  if (opts.eval.track_provenance) {
    return Status::Invalid(
        "materialized views do not maintain provenance; use the sequential "
        "evaluator for derivation trees");
  }
  std::unique_ptr<MaterializedView> view(
      new MaterializedView(program, db, opts));
  FACTLOG_RETURN_IF_ERROR(view->Init());
  return view;
}

Result<std::unique_ptr<MaterializedView>> MaterializedView::Restore(
    const ast::Program& program, eval::Database* db,
    const IncrementalOptions& opts, const std::vector<ViewPredState>& preds) {
  if (opts.eval.track_provenance) {
    return Status::Invalid(
        "materialized views do not maintain provenance; use the sequential "
        "evaluator for derivation trees");
  }
  std::unique_ptr<MaterializedView> view(
      new MaterializedView(program, db, opts));
  FACTLOG_RETURN_IF_ERROR(view->Init(&preds));
  return view;
}

std::vector<ViewPredState> MaterializedView::DumpState() {
  std::vector<ViewPredState> out;
  for (auto& [pred, rel] : *result_.mutable_idb()) {
    rel->SyncShards();
    ViewPredState pd;
    pd.pred = pred;
    pd.arity = static_cast<uint32_t>(rel->arity());
    pd.counts_enabled = rel->support_counts_enabled();
    pd.num_rows = rel->size();
    pd.rows.reserve(rel->size() * rel->arity());
    for (size_t r = 0; r < rel->size(); ++r) {
      const ValueId* row = rel->row(r);
      pd.rows.insert(pd.rows.end(), row, row + rel->arity());
      if (pd.counts_enabled) pd.row_counts.push_back(rel->SupportOf(row));
    }
    out.push_back(std::move(pd));
  }
  return out;
}

Status MaterializedView::Init(const std::vector<ViewPredState>* restore) {
  FACTLOG_RETURN_IF_ERROR(program_.Validate());
  idb_preds_ = program_.IdbPredicates();
  // One join plan for the program's rules, shared with the initial
  // evaluation below: the engine's compile-time plan when it gave us one,
  // else planned here from the database's extent sizes.
  plan_ = eval::PlanForEvaluation(program_, *db_, opts_.eval);
  rules_.reserve(program_.rules().size());
  for (size_t i = 0; i < program_.rules().size(); ++i) {
    const ast::Rule& r = program_.rules()[i];
    FACTLOG_ASSIGN_OR_RETURN(
        CompiledRule cr,
        CompiledRule::Compile(r, &db_->store(), &plan_.rules[i]));
    // The compiled body is in plan order; the plan's declared index
    // requirements are the probe keys the delta passes pre-build.
    plan_cols_.emplace_back();
    for (const plan::LiteralPlan& lp : plan_.rules[i].order) {
      plan_cols_.back().push_back(lp.index_cols);
    }
    rules_.push_back(std::move(cr));
    pred_info_[r.head().predicate()].rules.push_back(i);
  }
  rule_join_stats_.resize(rules_.size());
  ComputeSccs();

  if (restore != nullptr) {
    // Checkpointed state replaces the from-scratch evaluation: fill the
    // maintained relations (including exact support counts) from the dump.
    for (const ViewPredState& pd : *restore) {
      auto rel =
          std::make_unique<Relation>(pd.arity, db_->storage_options());
      if (pd.counts_enabled) {
        rel->EnableSupportCounts();
        for (uint64_t r = 0; r < pd.num_rows; ++r) {
          rel->AddSupport(pd.rows.data() + r * pd.arity, pd.row_counts[r]);
        }
      } else {
        for (uint64_t r = 0; r < pd.num_rows; ++r) {
          rel->Insert(pd.rows.data() + r * pd.arity);
        }
      }
      rel->SyncShards();
      (*result_.mutable_idb())[pd.pred] = std::move(rel);
    }
    // IDB predicates the dump omitted (empty at checkpoint time) still need
    // their relations.
    auto arities = program_.PredicateArities();
    for (const std::string& pred : idb_preds_) {
      if (result_.Find(pred) == nullptr) {
        auto it = arities.find(pred);
        (*result_.mutable_idb())[pred] = std::make_unique<Relation>(
            it == arities.end() ? 0 : it->second, db_->storage_options());
      }
    }
  } else {
    // The initial materialization is one ordinary from-scratch evaluation —
    // on the pool when the caller has one, sequentially otherwise.
    eval::EvalOptions eopts = opts_.eval;
    eopts.strategy = eval::Strategy::kSemiNaive;
    eopts.shared_edb = false;
    eopts.program_plan = &plan_;
    if (opts_.pool != nullptr) {
      exec::ParallelEvalOptions popts;
      popts.eval = eopts;
      popts.min_rows_to_partition = opts_.min_rows_to_partition;
      FACTLOG_ASSIGN_OR_RETURN(
          result_, exec::EvaluateParallel(program_, db_, opts_.pool, popts));
    } else {
      FACTLOG_ASSIGN_OR_RETURN(result_, eval::Evaluate(program_, db_, eopts));
    }
  }
  // The engine's plan pointer has served its purpose (plan_ is a copy);
  // never read it again — its CompiledQuery may be evicted from the cache.
  opts_.eval.program_plan = nullptr;

  for (auto& [pred, info] : pred_info_) {
    Relation* rel = result_.Find(pred);
    if (rel == nullptr) {
      return Status::Internal("evaluation produced no relation for IDB '" +
                              pred + "'");
    }
    info.shard_locks = std::make_unique<std::mutex[]>(rel->shard_count());
  }

  // Rederivation rules for DRed: the original body guarded by a candidate
  // literal over the head's arguments, so re-derivation enumerates only the
  // over-deleted facts instead of the whole relation.
  cand_prefix_ = "__inc_cand__";
  {
    auto arities = program_.PredicateArities();
    bool taken = true;
    while (taken) {
      taken = false;
      for (const auto& [name, arity] : arities) {
        if (name.rfind(cand_prefix_, 0) == 0) {
          cand_prefix_ += "_";
          taken = true;
          break;
        }
      }
    }
  }
  const std::string& cand_prefix = cand_prefix_;
  // Rederivation bodies are planned through the same cost model as every
  // other rule (the greedy planner replaced the old ad-hoc guard ordering):
  // the leading literal is pinned — the candidate guard for round 0, the
  // driving occurrence for the rotated variants — and the rest joins
  // greedily on already-bound variables. Extent hints are exact here: the
  // EDB and the freshly materialized IDB are both in hand; candidate guards
  // are overdeletion-sized, so they rank as delta extents.
  plan::PlanOptions ropts;
  ropts.pinned_prefix = 1;
  for (const auto& [name, rel] : db_->relations()) {
    ropts.extent_hints[name] = rel->size();
  }
  for (const auto& [pred, rel] : result_.idb()) {
    ropts.extent_hints[pred] = rel->size();
  }
  for (const auto& [pred, info] : pred_info_) {
    if (info.recursive) ropts.delta_preds.insert(cand_prefix + pred);
  }
  auto compile_planned = [&](ast::Rule rule) -> Result<CompiledRule> {
    plan::JoinPlan jp = plan::PlanRule(rule, ropts);
    return CompiledRule::Compile(rule, &db_->store(), &jp);
  };
  rederive_rules_.resize(rules_.size());
  rederive_occ_rules_.resize(rules_.size());
  for (size_t i = 0; i < program_.rules().size(); ++i) {
    const ast::Rule& r = program_.rules()[i];
    const PredInfo& head_info = pred_info_.at(r.head().predicate());
    if (!head_info.recursive) continue;
    ast::Atom cand(cand_prefix + r.head().predicate(), r.head().args());
    // Round-0 variant: the guard leads (scan bounded by the candidates).
    std::vector<ast::Atom> body0 = {cand};
    body0.insert(body0.end(), r.body().begin(), r.body().end());
    FACTLOG_ASSIGN_OR_RETURN(
        CompiledRule rr, compile_planned(ast::Rule(r.head(), body0)));
    rederive_rules_[i] = std::make_unique<CompiledRule>(std::move(rr));
    // Rotated variants for delta-driven rounds: the occurrence leads and the
    // guard joins like any other literal — typically as an indexed filter on
    // the by-then-bound head columns.
    for (size_t b = 0; b < r.body().size(); ++b) {
      const ast::Atom& lit = r.body()[b];
      auto lit_info = pred_info_.find(lit.predicate());
      if (lit_info == pred_info_.end() ||
          lit_info->second.scc != head_info.scc) {
        continue;
      }
      std::vector<ast::Atom> rot_body = {lit, cand};
      for (size_t k = 0; k < r.body().size(); ++k) {
        if (k != b) rot_body.push_back(r.body()[k]);
      }
      FACTLOG_ASSIGN_OR_RETURN(
          CompiledRule rot,
          compile_planned(ast::Rule(r.head(), std::move(rot_body))));
      rederive_occ_rules_[i].emplace(
          b, std::make_unique<CompiledRule>(std::move(rot)));
    }
  }

  // Derivation edges are never persisted (checkpoints dump rows, not the
  // hypergraph), so both Build and Restore run the same full-sweep rebuild.
  FACTLOG_RETURN_IF_ERROR(RebuildDerivationEdges());

  // A restored view carries exact dumped counts; rebuilding would require
  // re-joining and defeat the point of persisting the view.
  if (restore != nullptr) return Status::OK();
  return RebuildSupportCounts();
}

void MaterializedView::ComputeSccs() {
  // Tarjan over the IDB dependency graph (head -> body). SCCs pop only after
  // every SCC they reach has popped, so the emission order is exactly the
  // dependencies-first order propagation wants.
  std::map<std::string, std::set<std::string>> adj;
  for (const std::string& p : idb_preds_) adj[p];
  for (const ast::Rule& r : program_.rules()) {
    for (const ast::Atom& b : r.body()) {
      if (IsIdb(b.predicate())) adj[r.head().predicate()].insert(b.predicate());
    }
  }
  std::map<std::string, int> index, low;
  std::vector<std::string> stack;
  std::set<std::string> on_stack;
  int counter = 0;
  std::function<void(const std::string&)> strongconnect =
      [&](const std::string& v) {
        index[v] = low[v] = counter++;
        stack.push_back(v);
        on_stack.insert(v);
        for (const std::string& w : adj[v]) {
          if (index.find(w) == index.end()) {
            strongconnect(w);
            low[v] = std::min(low[v], low[w]);
          } else if (on_stack.count(w) > 0) {
            low[v] = std::min(low[v], index[w]);
          }
        }
        if (low[v] != index[v]) return;
        std::vector<std::string> scc;
        while (true) {
          std::string w = stack.back();
          stack.pop_back();
          on_stack.erase(w);
          scc.push_back(w);
          if (w == v) break;
        }
        bool recursive = scc.size() > 1;
        for (const std::string& w : scc) {
          if (adj[w].count(w) > 0) recursive = true;
        }
        for (const std::string& w : scc) {
          pred_info_[w].scc = sccs_.size();
          pred_info_[w].recursive = recursive;
        }
        sccs_.push_back(std::move(scc));
      };
  for (const std::string& p : idb_preds_) {
    if (index.find(p) == index.end()) strongconnect(p);
  }
}

Status MaterializedView::RebuildSupportCounts() {
  // Exact derivation counts for every counting-maintained predicate: zero
  // them, then credit one support per rule instantiation over the final
  // state. Every derivable row is already in the relation (fixpoint), so
  // AddSupport only adjusts counters here.
  for (const auto& [pred, info] : pred_info_) {
    if (info.recursive) continue;
    result_.Find(pred)->EnableSupportCounts();
  }
  for (const auto& [pred, info] : pred_info_) {
    if (info.recursive) continue;
    Relation* rel = result_.Find(pred);
    for (size_t ri : info.rules) {
      const CompiledRule& rule = rules_[ri];
      std::vector<RelationView> views;
      views.reserve(rule.body().size());
      for (const CompiledAtom& lit : rule.body()) {
        views.push_back(lit.kind == LitKind::kRelation
                            ? RelationView{CurrentRel(lit.predicate), nullptr}
                            : RelationView{});
      }
      JoinStats js;
      FACTLOG_RETURN_IF_ERROR(EnumerateRule(
          rule, &db_->store(), views, /*track_premises=*/false, &js,
          [&](const std::vector<ValueId>& row, const std::vector<eval::FactKey>*) {
            rel->AddSupport(row.data(), 1);
            return true;
          }));
    }
  }
  return Status::OK();
}

Status MaterializedView::RebuildDerivationEdges() {
  bool any_recursive = false;
  for (const auto& [pred, info] : pred_info_) {
    if (info.recursive) any_recursive = true;
  }
  if (!any_recursive || opts_.max_derivation_edges == 0) return Status::OK();
  edges_ = std::make_unique<DerivationEdgeStore>(opts_.max_derivation_edges);
  edges_overflowed_ = false;
  // Every instantiation of every recursive-head rule over the final state is
  // exactly one edge of the complete derivation hypergraph (the fixpoint
  // guarantees all premises and heads are present).
  for (const auto& [pred, info] : pred_info_) {
    if (!info.recursive) continue;
    for (size_t ri : info.rules) {
      const CompiledRule& rule = rules_[ri];
      std::vector<RelationView> views;
      views.reserve(rule.body().size());
      for (const CompiledAtom& lit : rule.body()) {
        views.push_back(lit.kind == LitKind::kRelation
                            ? RelationView{CurrentRel(lit.predicate), nullptr}
                            : RelationView{});
      }
      JoinStats js;
      const std::string& p = pred;
      FACTLOG_RETURN_IF_ERROR(EnumerateRule(
          rule, &db_->store(), views, /*track_premises=*/true, &js,
          [&](const std::vector<ValueId>& row,
              const std::vector<eval::FactKey>* premises) {
            RecordEdge(p, row, ri, premises);
            return true;
          }));
      if (edges_overflowed_) break;
    }
    if (edges_overflowed_) break;
  }
  // The ranks RecordEdge assigned during the sweep reflect enumeration
  // order, not derivation height — replace them with the exact minimal
  // heights so the supporting-derivation invariant holds from the start.
  if (!edges_overflowed_) edges_->RecomputeRanks();
  SettleEdgeStore();
  return Status::OK();
}

void MaterializedView::RecordEdge(const std::string& pred,
                                  const std::vector<ValueId>& row,
                                  size_t rule_index,
                                  const std::vector<eval::FactKey>* premises) {
  if (edges_ == nullptr || edges_overflowed_ || premises == nullptr) return;
  DerivationEdgeStore::FactId head =
      edges_->InternFact(pred, row.data(), row.size());
  std::vector<DerivationEdgeStore::FactId> prems;
  prems.reserve(premises->size());
  for (const eval::FactKey& pk : *premises) {
    prems.push_back(edges_->InternFact(pk.predicate, pk.row.data(),
                                       pk.row.size()));
  }
  if (edges_->AddEdge(head, static_cast<int>(rule_index), prems) &&
      edges_->derivations_of(head).size() == 1) {
    // First derivation of a newly derived fact: its rank is one above its
    // premises', keeping every alive fact with at least one derivation whose
    // premises all rank strictly lower (what deletion counts as support).
    // Alternate derivations of known facts leave the rank untouched.
    uint64_t max_rank = 0;
    for (DerivationEdgeStore::FactId p : prems) {
      max_rank = std::max<uint64_t>(max_rank, edges_->rank_of(p));
    }
    edges_->set_rank(head,
                     static_cast<uint32_t>(std::min<uint64_t>(
                         max_rank + 1, 0xffffffffu)));
  }
  if (edges_->over_budget()) edges_overflowed_ = true;
}

void MaterializedView::SettleEdgeStore() {
  if (edges_ != nullptr && edges_overflowed_) {
    // The store may be missing edges rejected over budget — an incomplete
    // hypergraph would under-delete, so it is unusable from here on.
    edges_.reset();
    stats_.edge_store_dropped = true;
  }
  stats_.edge_store_active = edges_ != nullptr;
  if (edges_ != nullptr) {
    stats_.edge_store_facts = edges_->num_facts();
    stats_.edge_store_edges = edges_->num_edges();
    stats_.edges_added = edges_->edges_added();
    stats_.edges_removed = edges_->edges_removed();
  } else {
    stats_.edge_store_facts = 0;
    stats_.edge_store_edges = 0;
  }
}

// ----------------------------------------------------------------- queries --

Result<eval::AnswerSet> MaterializedView::Answer(const ast::Atom& query) {
  if (poisoned_) {
    return Status::FailedPrecondition(
        "materialized view poisoned by an earlier failed propagation; drop "
        "and re-materialize");
  }
  return eval::ExtractAnswers(query, &result_, db_);
}

Result<std::string> MaterializedView::Explain(const ast::Atom& fact) {
  if (poisoned_) {
    return Status::FailedPrecondition(
        "materialized view poisoned by an earlier failed propagation; drop "
        "and re-materialize");
  }
  for (const ast::Term& t : fact.args()) {
    if (!t.IsGround()) {
      return Status::Invalid("why needs a ground fact, got variable in '" +
                             fact.ToString() + "'");
    }
  }
  FACTLOG_ASSIGN_OR_RETURN(std::vector<ValueId> row, db_->InternRow(fact));
  const std::string& pred = fact.predicate();
  Relation* rel = CurrentRel(pred);
  auto render = [&](const std::string& suffix) {
    std::string out = fact.predicate() + "(";
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ", ";
      out += db_->store().ToString(row[i]);
    }
    out += ")" + suffix + "\n";
    return out;
  };
  if (rel == nullptr || !rel->Contains(row.data())) {
    return render("   [not in the current state]");
  }
  if (edges_ != nullptr) {
    eval::FactKey key{pred, row};
    if (edges_->FindFact(pred, row.data(), row.size()) !=
        DerivationEdgeStore::kNoFact) {
      return DerivationTreeToString(BuildDerivationTree(*edges_, key),
                                    db_->store());
    }
  }
  if (!IsIdb(pred)) return render("   [EDB fact]");
  if (!pred_info_.at(pred).recursive) {
    return render("   [" + std::to_string(rel->SupportOf(row.data())) +
                  " derivation(s), counting-maintained]");
  }
  // Recursive fact unknown to the store: either edge tracking is off/dropped
  // or the fact has no recorded derivation (a program fact).
  return render(edges_ == nullptr ? "   [derivation edges not tracked]"
                                  : "   [no recorded derivation]");
}

std::shared_ptr<eval::Relation> MaterializedView::FrozenAnswer() {
  if (poisoned_ || !program_.query().has_value()) return nullptr;
  const ast::Atom& q = *program_.query();
  Relation* rel = result_.Find(q.predicate());
  if (rel == nullptr) return nullptr;
  // Defensive: propagation leaves maintained relations synced, but a frozen
  // copy of a desynced relation would publish a stale location table.
  rel->SyncShards();
  // Prewarm the answer-probe index (the query's ground argument positions)
  // on the live relation before freezing, so every snapshot reader probes
  // instead of scanning. Building it bumps the version exactly once.
  std::vector<int> cols;
  for (size_t i = 0; i < q.arity(); ++i) {
    if (q.args()[i].IsGround()) cols.push_back(static_cast<int>(i));
  }
  if (!cols.empty()) rel->EnsureIndex(cols);
  if (frozen_answer_ == nullptr ||
      frozen_answer_version_ != rel->version()) {
    frozen_answer_ = rel->FrozenCopy();
    frozen_answer_version_ = rel->version();
  }
  return frozen_answer_;
}

uint64_t MaterializedView::total_facts() const {
  uint64_t n = 0;
  for (const auto& [pred, rel] : result_.idb()) n += rel->size();
  return n;
}

// ----------------------------------------------------------------- helpers --

Relation* MaterializedView::CurrentRel(const std::string& pred) {
  if (IsIdb(pred)) return result_.Find(pred);
  return db_->Find(pred);
}

bool MaterializedView::SccAffected(const std::vector<std::string>& scc,
                                   const DeltaMap& delta) const {
  for (const std::string& p : scc) {
    for (size_t ri : pred_info_.at(p).rules) {
      for (const CompiledAtom& lit : rules_[ri].body()) {
        if (lit.kind != LitKind::kRelation) continue;
        auto it = delta.find(lit.predicate);
        if (it != delta.end() && !it->second->empty()) return true;
      }
    }
  }
  return false;
}

uint64_t MaterializedView::InFlight(
    const std::vector<std::unique_ptr<Relation>>& owned) const {
  uint64_t n = 0;
  for (const auto& d : owned) n += d->size();
  return n;
}

void MaterializedView::FoldJoinStats(size_t rule_index,
                                     const JoinStats& js) {
  JoinStats& target = rule_join_stats_[rule_index];
  target.rows_matched += js.rows_matched;
  target.instantiations += js.instantiations;
  if (target.lit_probes.size() < js.lit_probes.size()) {
    target.lit_probes.resize(js.lit_probes.size(), 0);
    target.lit_matched.resize(js.lit_probes.size(), 0);
  }
  for (size_t k = 0; k < js.lit_probes.size(); ++k) {
    target.lit_probes[k] += js.lit_probes[k];
    target.lit_matched[k] += js.lit_matched[k];
  }
}

std::vector<plan::ProbeObservation> MaterializedView::DrainObservations() {
  std::vector<plan::ProbeObservation> out;
  for (size_t i = 0; i < rules_.size(); ++i) {
    eval::DrainProbeObservations(rules_[i], plan_.rules[i],
                                 &rule_join_stats_[i], &out);
  }
  return out;
}

// ------------------------------------------------------------- delta passes --

bool MaterializedView::PreparePass(size_t rule_index,
                                   std::vector<RelationView>* views,
                                   size_t occ, const Relation* delta) {
  bool parallel = opts_.pool != nullptr && delta->shard_count() > 1 &&
                  delta->size() >= opts_.min_rows_to_partition;
  if (!parallel) return false;
  // Pre-build every index a worker could probe (the plan's declared index
  // requirements), then freeze the views: inside the parallel region only
  // the const read path runs.
  const std::vector<std::vector<int>>& cols = plan_cols_[rule_index];
  for (size_t k = 0; k < views->size(); ++k) {
    if (k == occ) continue;
    RelationView& view = (*views)[k];
    if (!cols[k].empty()) {
      for (Relation* r : {view.first, view.second, view.third}) {
        if (r != nullptr) r->EnsureIndex(cols[k]);
      }
    }
    view.shared = true;
  }
  if (!cols[occ].empty()) {
    const_cast<Relation*>(delta)->EnsureShardIndexes(cols[occ]);
  }
  return true;
}

Status MaterializedView::RunPassCollect(size_t rule_index,
                                        std::vector<RelationView> views,
                                        size_t occ, const Relation* delta,
                                        bool premises, const RowSink& apply) {
  if (delta == nullptr || delta->empty()) return Status::OK();
  ++stats_.delta_passes;
  const CompiledRule& rule = rules_[rule_index];
  if (!PreparePass(rule_index, &views, occ, delta)) {
    views[occ] = RelationView{const_cast<Relation*>(delta), nullptr};
    JoinStats js;
    Status st = EnumerateRule(
        rule, &db_->store(), views, premises, &js,
        [&](const std::vector<ValueId>& row,
            const std::vector<eval::FactKey>* prem) {
          apply(row, prem);
          return true;
        });
    FoldJoinStats(rule_index, js);
    return st;
  }
  // One task per delta shard; workers only collect (multiplicity preserved,
  // premises carried by value when the pass tracks them), the calling thread
  // applies, so sinks stay free of synchronization.
  const size_t shards = delta->shard_count();
  std::vector<std::vector<std::vector<ValueId>>> collected(shards);
  std::vector<std::vector<std::vector<eval::FactKey>>> collected_prem(shards);
  std::vector<Status> statuses(shards, Status::OK());
  std::vector<JoinStats> shard_js(shards);
  opts_.pool->ParallelFor(shards, [&](size_t s) {
    const Relation& extent = delta->shard(s);
    if (extent.empty()) return;
    std::vector<RelationView> wviews = views;
    wviews[occ] = RelationView{const_cast<Relation*>(&extent), nullptr,
                               /*shared=*/true};
    statuses[s] = EnumerateRule(
        rule, &db_->store(), wviews, premises, &shard_js[s],
        [&](const std::vector<ValueId>& row,
            const std::vector<eval::FactKey>* prem) {
          collected[s].push_back(row);
          if (prem != nullptr) collected_prem[s].push_back(*prem);
          return true;
        });
  });
  for (const JoinStats& js : shard_js) FoldJoinStats(rule_index, js);
  for (const Status& st : statuses) FACTLOG_RETURN_IF_ERROR(st);
  for (size_t s = 0; s < shards; ++s) {
    for (size_t i = 0; i < collected[s].size(); ++i) {
      apply(collected[s][i],
            premises ? &collected_prem[s][i] : nullptr);
    }
  }
  return Status::OK();
}

Status MaterializedView::RunPassInto(
    size_t rule_index, std::vector<RelationView> views, size_t occ,
    const Relation* delta, const std::vector<const Relation*>& known,
    Relation* target, std::mutex* locks) {
  if (delta == nullptr || delta->empty()) return Status::OK();
  ++stats_.delta_passes;
  const CompiledRule& rule = rules_[rule_index];
  auto is_known = [&known](const ValueId* row) {
    for (const Relation* k : known) {
      if (k != nullptr && k->Contains(row)) return true;
    }
    return false;
  };
  if (!PreparePass(rule_index, &views, occ, delta)) {
    views[occ] = RelationView{const_cast<Relation*>(delta), nullptr};
    JoinStats js;
    Status st = EnumerateRule(
        rule, &db_->store(), views, /*track_premises=*/false, &js,
        [&](const std::vector<ValueId>& row, const std::vector<eval::FactKey>*) {
          if (!is_known(row.data())) target->Insert(row);
          return true;
        });
    FoldJoinStats(rule_index, js);
    return st;
  }
  // Workers deduplicate against the frozen `known` extents into thread-local
  // buffers sharded like the target, then merge shard-to-shard under the
  // head predicate's per-shard locks — the exec merge seam.
  const size_t shards = delta->shard_count();
  std::vector<Status> statuses(shards, Status::OK());
  std::vector<JoinStats> shard_js(shards);
  opts_.pool->ParallelFor(shards, [&](size_t s) {
    const Relation& extent = delta->shard(s);
    if (extent.empty()) return;
    std::vector<RelationView> wviews = views;
    wviews[occ] = RelationView{const_cast<Relation*>(&extent), nullptr,
                               /*shared=*/true};
    Relation buffer(target->arity(), target->storage_options());
    statuses[s] = EnumerateRule(
        rule, &db_->store(), wviews, /*track_premises=*/false, &shard_js[s],
        [&](const std::vector<ValueId>& row, const std::vector<eval::FactKey>*) {
          if (!is_known(row.data())) buffer.Insert(row);
          return true;
        });
    if (statuses[s].ok() && !buffer.empty()) {
      exec::MergeBufferLocked(target, buffer, locks);
    }
  });
  for (const JoinStats& js : shard_js) FoldJoinStats(rule_index, js);
  for (const Status& st : statuses) FACTLOG_RETURN_IF_ERROR(st);
  target->SyncShards();
  return Status::OK();
}

// ------------------------------------------------------------- insertions --

Status MaterializedView::ApplyInsert(const std::string& pred,
                                     const Relation& delta) {
  if (poisoned_) {
    return Status::FailedPrecondition(
        "materialized view poisoned by an earlier failed propagation; drop "
        "and re-materialize");
  }
  // EDB facts named like an IDB predicate are invisible to evaluation (IDB
  // relations shadow them), so there is nothing to maintain.
  if (delta.empty() || IsIdb(pred)) return Status::OK();
  const ViewUpdateStats before = stats_;
  Status st = PropagateInsert(pred, delta);
  if (!st.ok()) poisoned_ = true;
  SettleEdgeStore();
  stats_.last_update = stats_.Since(before);
  return st;
}

Status MaterializedView::PropagateInsert(const std::string& pred,
                                         const Relation& edb_delta) {
  DeltaMap delta;
  delta[pred] = &edb_delta;
  std::vector<std::unique_ptr<Relation>> owned;
  for (const std::vector<std::string>& scc : sccs_) {
    if (!SccAffected(scc, delta)) continue;
    Status st = pred_info_.at(scc.front()).recursive
                    ? InsertRecursive(scc, &delta, &owned)
                    : InsertCounting(scc.front(), &delta, &owned);
    FACTLOG_RETURN_IF_ERROR(st);
  }
  // Apply: every maintained relation stayed in its old state (so the union
  // views above were exact); absorb the accumulated deltas now. The engine
  // inserts the EDB rows after all views have propagated.
  for (const auto& [p, d] : delta) {
    if (!IsIdb(p) || d->empty()) continue;
    Relation* rel = result_.Find(p);
    if (pred_info_.at(p).recursive) {
      stats_.idb_inserted += rel->Absorb(*d);
    } else {
      for (size_t r = 0; r < d->size(); ++r) {
        const ValueId* row = d->row(r);
        rel->AddSupport(row, d->SupportOf(row));
      }
      stats_.idb_inserted += d->size();
    }
  }
  stats_.inserts_applied += edb_delta.size();
  return Status::OK();
}

Status MaterializedView::InsertCounting(
    const std::string& pred, DeltaMap* delta,
    std::vector<std::unique_ptr<Relation>>* owned) {
  Relation* rel = result_.Find(pred);
  auto dp = std::make_unique<Relation>(rel->arity(), rel->storage_options());
  for (size_t ri : pred_info_.at(pred).rules) {
    const CompiledRule& rule = rules_[ri];
    for (size_t j = 0; j < rule.body().size(); ++j) {
      const CompiledAtom& lit_j = rule.body()[j];
      if (lit_j.kind != LitKind::kRelation) continue;
      auto dj = delta->find(lit_j.predicate);
      if (dj == delta->end() || dj->second->empty()) continue;
      // Occurrence decomposition: before j at the new state (stored-old
      // union delta), j at the delta, after j at the old state. Each
      // instantiation is one new derivation.
      std::vector<RelationView> views;
      views.reserve(rule.body().size());
      for (size_t k = 0; k < rule.body().size(); ++k) {
        const CompiledAtom& lit = rule.body()[k];
        if (lit.kind != LitKind::kRelation || k == j) {
          views.push_back(RelationView{});
          continue;
        }
        Relation* cur = CurrentRel(lit.predicate);
        auto dk = delta->find(lit.predicate);
        Relation* d =
            (k < j && dk != delta->end())
                ? const_cast<Relation*>(dk->second)
                : nullptr;
        views.push_back(RelationView{cur, d});
      }
      FACTLOG_RETURN_IF_ERROR(RunPassCollect(
          ri, std::move(views), j, dj->second, /*premises=*/false,
          [&](const std::vector<ValueId>& row,
              const std::vector<eval::FactKey>*) {
            ++stats_.support_updates;
            if (rel->Contains(row.data())) {
              rel->AddSupport(row.data(), 1);  // count-only: row set unchanged
            } else {
              dp->AddSupport(row.data(), 1);
            }
          }));
    }
  }
  if (!dp->empty()) {
    (*delta)[pred] = dp.get();
    owned->push_back(std::move(dp));
  }
  return Status::OK();
}

Status MaterializedView::InsertRecursive(
    const std::vector<std::string>& scc, DeltaMap* delta,
    std::vector<std::unique_ptr<Relation>>* owned) {
  std::set<std::string> in_scc(scc.begin(), scc.end());
  // acc = facts new this propagation (the eventual outward delta), cur = the
  // current fixpoint delta, nxt = the next one. All sharded like the
  // maintained relation so worker buffers merge shard-to-shard.
  std::map<std::string, std::unique_ptr<Relation>> acc, cur, nxt;
  for (const std::string& p : scc) {
    Relation* rel = result_.Find(p);
    acc[p] = std::make_unique<Relation>(rel->arity(), rel->storage_options());
    cur[p] = std::make_unique<Relation>(rel->arity(), rel->storage_options());
    nxt[p] = std::make_unique<Relation>(rel->arity(), rel->storage_options());
  }

  // Seed: apply the lower-stratum deltas one occurrence at a time while the
  // SCC's own extents sit at their old state; the fixpoint below then covers
  // every instantiation involving a new SCC fact.
  for (const std::string& p : scc) {
    for (size_t ri : pred_info_.at(p).rules) {
      const CompiledRule& rule = rules_[ri];
      for (size_t j = 0; j < rule.body().size(); ++j) {
        const CompiledAtom& lit_j = rule.body()[j];
        if (lit_j.kind != LitKind::kRelation) continue;
        if (in_scc.count(lit_j.predicate) > 0) continue;
        auto dj = delta->find(lit_j.predicate);
        if (dj == delta->end() || dj->second->empty()) continue;
        std::vector<RelationView> views;
        views.reserve(rule.body().size());
        for (size_t k = 0; k < rule.body().size(); ++k) {
          const CompiledAtom& lit = rule.body()[k];
          if (lit.kind != LitKind::kRelation || k == j) {
            views.push_back(RelationView{});
            continue;
          }
          if (in_scc.count(lit.predicate) > 0) {
            views.push_back(RelationView{CurrentRel(lit.predicate), nullptr});
            continue;
          }
          Relation* c = CurrentRel(lit.predicate);
          auto dk = delta->find(lit.predicate);
          Relation* d = (k < j && dk != delta->end())
                            ? const_cast<Relation*>(dk->second)
                            : nullptr;
          views.push_back(RelationView{c, d});
        }
        if (edges_ != nullptr) {
          // Edge-recording variant: every instantiation is a new derivation
          // of its head (novel rows and alternate derivations of known rows
          // alike), so collect with premises and apply serially — the store
          // is single-writer.
          Relation* base = result_.Find(p);
          Relation* target = cur[p].get();
          FACTLOG_RETURN_IF_ERROR(RunPassCollect(
              ri, std::move(views), j, dj->second, /*premises=*/true,
              [&](const std::vector<ValueId>& row,
                  const std::vector<eval::FactKey>* prem) {
                RecordEdge(p, row, ri, prem);
                if (!base->Contains(row.data())) target->Insert(row);
              }));
        } else {
          FACTLOG_RETURN_IF_ERROR(RunPassInto(
              ri, std::move(views), j, dj->second, {result_.Find(p)},
              cur[p].get(), pred_info_.at(p).shard_locks.get()));
        }
      }
    }
  }

  // Semi-naive fixpoint within the SCC. Non-SCC literals sit uniformly at
  // their new state; SCC literals before the occurrence see this round's
  // view (stored ∪ acc ∪ cur — the three-way union), after it last round's.
  uint64_t iterations = 0;
  while (true) {
    bool any = false;
    for (const std::string& p : scc) {
      if (!cur[p]->empty()) {
        any = true;
        break;
      }
    }
    if (!any) break;
    if (++iterations > opts_.eval.max_iterations) {
      return Status::ResourceExhausted(
          "iteration budget exceeded during incremental insertion");
    }
    for (const std::string& p : scc) {
      for (size_t ri : pred_info_.at(p).rules) {
        const CompiledRule& rule = rules_[ri];
        for (size_t j = 0; j < rule.body().size(); ++j) {
          const CompiledAtom& lit_j = rule.body()[j];
          if (lit_j.kind != LitKind::kRelation) continue;
          if (in_scc.count(lit_j.predicate) == 0) continue;
          if (cur[lit_j.predicate]->empty()) continue;
          std::vector<RelationView> views;
          views.reserve(rule.body().size());
          for (size_t k = 0; k < rule.body().size(); ++k) {
            const CompiledAtom& lit = rule.body()[k];
            if (lit.kind != LitKind::kRelation || k == j) {
              views.push_back(RelationView{});
              continue;
            }
            if (in_scc.count(lit.predicate) > 0) {
              Relation* base = result_.Find(lit.predicate);
              Relation* a = acc[lit.predicate].get();
              views.push_back(
                  k < j ? RelationView{base, a, false,
                                       cur[lit.predicate].get()}
                        : RelationView{base, a});
              continue;
            }
            Relation* c = CurrentRel(lit.predicate);
            auto dk = delta->find(lit.predicate);
            Relation* d = dk != delta->end()
                              ? const_cast<Relation*>(dk->second)
                              : nullptr;
            views.push_back(RelationView{c, d});
          }
          if (edges_ != nullptr) {
            Relation* base = result_.Find(p);
            Relation* a = acc[p].get();
            Relation* c = cur[p].get();
            Relation* target = nxt[p].get();
            FACTLOG_RETURN_IF_ERROR(RunPassCollect(
                ri, std::move(views), j, cur[lit_j.predicate].get(),
                /*premises=*/true,
                [&](const std::vector<ValueId>& row,
                    const std::vector<eval::FactKey>* prem) {
                  RecordEdge(p, row, ri, prem);
                  if (!base->Contains(row.data()) &&
                      !a->Contains(row.data()) && !c->Contains(row.data())) {
                    target->Insert(row);
                  }
                }));
          } else {
            FACTLOG_RETURN_IF_ERROR(RunPassInto(
                ri, std::move(views), j, cur[lit_j.predicate].get(),
                {result_.Find(p), acc[p].get(), cur[p].get()}, nxt[p].get(),
                pred_info_.at(p).shard_locks.get()));
          }
        }
      }
    }
    uint64_t extra = 0;
    for (const std::string& p : scc) {
      acc[p]->Absorb(*cur[p]);
      cur[p] = std::move(nxt[p]);
      nxt[p] = std::make_unique<Relation>(acc[p]->arity(),
                                          acc[p]->storage_options());
      extra += acc[p]->size() + cur[p]->size();
    }
    if (total_facts() + InFlight(*owned) + extra > opts_.eval.max_facts) {
      return Status::ResourceExhausted(
          "fact budget exceeded during incremental insertion");
    }
  }

  for (const std::string& p : scc) {
    if (acc[p]->empty()) continue;
    (*delta)[p] = acc[p].get();
    owned->push_back(std::move(acc[p]));
  }
  return Status::OK();
}

// -------------------------------------------------------------- deletions --

Status MaterializedView::ApplyDelete(const std::string& pred,
                                     const Relation& delta) {
  if (poisoned_) {
    return Status::FailedPrecondition(
        "materialized view poisoned by an earlier failed propagation; drop "
        "and re-materialize");
  }
  if (delta.empty() || IsIdb(pred)) return Status::OK();
  const ViewUpdateStats before = stats_;
  Status st = PropagateDelete(pred, delta);
  if (!st.ok()) poisoned_ = true;
  SettleEdgeStore();
  stats_.last_update = stats_.Since(before);
  return st;
}

Status MaterializedView::PropagateDelete(const std::string& pred,
                                         const Relation& edb_delta) {
  // Deletion invariant: every already-processed relation (and the EDB, which
  // the engine erased before calling) holds its NEW state, with the removed
  // rows kept aside in `delta` — so old state = stored ∪ delta, always
  // representable as a union view.
  DeltaMap delta;
  delta[pred] = &edb_delta;
  std::vector<std::unique_ptr<Relation>> owned;
  for (const std::vector<std::string>& scc : sccs_) {
    if (!SccAffected(scc, delta)) continue;
    Status st = pred_info_.at(scc.front()).recursive
                    ? DeleteRecursive(scc, &delta, &owned)
                    : DeleteCounting(scc.front(), &delta, &owned);
    FACTLOG_RETURN_IF_ERROR(st);
  }
  stats_.deletes_applied += edb_delta.size();
  return Status::OK();
}

Status MaterializedView::DeleteCounting(
    const std::string& pred, DeltaMap* delta,
    std::vector<std::unique_ptr<Relation>>* owned) {
  Relation* rel = result_.Find(pred);
  // Lost derivations with multiplicity: before j new ({stored}), j at the
  // deleted rows, after j old ({stored, deleted}).
  std::map<std::vector<ValueId>, int64_t> lost;
  for (size_t ri : pred_info_.at(pred).rules) {
    const CompiledRule& rule = rules_[ri];
    for (size_t j = 0; j < rule.body().size(); ++j) {
      const CompiledAtom& lit_j = rule.body()[j];
      if (lit_j.kind != LitKind::kRelation) continue;
      auto dj = delta->find(lit_j.predicate);
      if (dj == delta->end() || dj->second->empty()) continue;
      std::vector<RelationView> views;
      views.reserve(rule.body().size());
      for (size_t k = 0; k < rule.body().size(); ++k) {
        const CompiledAtom& lit = rule.body()[k];
        if (lit.kind != LitKind::kRelation || k == j) {
          views.push_back(RelationView{});
          continue;
        }
        Relation* cur = CurrentRel(lit.predicate);
        auto dk = delta->find(lit.predicate);
        Relation* d = (k > j && dk != delta->end())
                          ? const_cast<Relation*>(dk->second)
                          : nullptr;
        views.push_back(RelationView{cur, d});
      }
      FACTLOG_RETURN_IF_ERROR(RunPassCollect(
          ri, std::move(views), j, dj->second, /*premises=*/false,
          [&](const std::vector<ValueId>& row,
              const std::vector<eval::FactKey>*) { ++lost[row]; }));
    }
  }
  if (lost.empty()) return Status::OK();
  auto dp = std::make_unique<Relation>(rel->arity(), rel->storage_options());
  for (const auto& [row, count] : lost) {
    stats_.support_updates += static_cast<uint64_t>(count);
    if (rel->AddSupport(row.data(), -count) == 0) {
      dp->Insert(row);
      ++stats_.idb_deleted;
    }
  }
  rel->SyncShards();
  if (!dp->empty()) {
    (*delta)[pred] = dp.get();
    owned->push_back(std::move(dp));
  }
  return Status::OK();
}

Status MaterializedView::DeleteRecursive(
    const std::vector<std::string>& scc, DeltaMap* delta,
    std::vector<std::unique_ptr<Relation>>* owned) {
  // Decision ladder: slice deletion along recorded derivation edges whenever
  // the store is live; classic DRed otherwise (tracking disabled, or the
  // store was dropped over budget).
  if (edges_ != nullptr && !edges_overflowed_) {
    return DeleteRecursiveSliced(scc, delta, owned);
  }
  return DeleteRecursiveDRed(scc, delta, owned);
}

Status MaterializedView::DeleteRecursiveSliced(
    const std::vector<std::string>& scc, DeltaMap* delta,
    std::vector<std::unique_ptr<Relation>>* owned) {
  using FactId = DerivationEdgeStore::FactId;
  using EdgeId = DerivationEdgeStore::EdgeId;
  DerivationEdgeStore& es = *edges_;

  // Pred-id bitmap of this SCC for cheap head filtering: cone expansion and
  // edge retirement must stay inside the SCC being processed (edges into
  // later SCCs are their passes' seeds).
  std::vector<bool> scc_pred;
  for (const std::string& p : scc) {
    int pid = es.PredId(p);
    if (pid < 0) continue;  // never appeared in any derivation
    if (scc_pred.size() <= static_cast<size_t>(pid)) {
      scc_pred.resize(static_cast<size_t>(pid) + 1, false);
    }
    scc_pred[static_cast<size_t>(pid)] = true;
  }
  auto in_this_scc = [&](FactId f) {
    uint32_t pid = es.pred_id_of(f);
    return pid < scc_pred.size() && scc_pred[pid];
  };

  // 1. Seeds: deleted lower-stratum rows the store has seen as premises
  // (parallel lookup when the delta is large). A deleted row no derivation
  // ever used cannot invalidate anything here.
  std::vector<FactId> seeds;
  std::unordered_set<FactId> seed_set;
  for (const auto& [p, d] : *delta) {
    const size_t n = d->size();
    std::vector<FactId> found;
    if (opts_.pool != nullptr && n >= opts_.min_rows_to_partition) {
      const size_t chunk = (n + 15) / 16;
      const size_t tasks = (n + chunk - 1) / chunk;
      std::vector<std::vector<FactId>> outs(tasks);
      const std::string& pred = p;
      const Relation* rel = d;
      opts_.pool->ParallelFor(tasks, [&](size_t t) {
        const size_t end = std::min(n, (t + 1) * chunk);
        for (size_t r = t * chunk; r < end; ++r) {
          FactId f = es.FindFact(pred, rel->row(r), rel->arity());
          if (f != DerivationEdgeStore::kNoFact) outs[t].push_back(f);
        }
      });
      for (auto& o : outs) found.insert(found.end(), o.begin(), o.end());
    } else {
      for (size_t r = 0; r < n; ++r) {
        FactId f = es.FindFact(p, d->row(r), d->arity());
        if (f != DerivationEdgeStore::kNoFact) found.push_back(f);
      }
    }
    for (FactId f : found) {
      if (seed_set.insert(f).second) seeds.push_back(f);
    }
  }
  if (seeds.empty()) return Status::OK();

  // 2. Support cascade. A derivation is *supporting* when all its premises
  // rank strictly below its head (ranks are minimal derivation heights, so
  // every alive fact has one — cyclic support never counts). Killing an
  // edge decrements its head's supporting count; a head reaching zero is
  // tentatively dead and kills its own uses in turn. Unlike a reachability
  // cone, the cascade only ever touches facts that actually lost an edge,
  // so random deletes in dense graphs stay delta-sized. Per round, workers
  // gather the frontier's use edges in parallel chunks; only the calling
  // thread mutates the kill/support state.
  std::unordered_set<EdgeId> killed;
  std::unordered_map<FactId, uint32_t> sup;  // touched SCC heads -> support
  std::unordered_set<FactId> tentative;
  std::vector<FactId> tentative_list;
  auto is_supporting = [&](EdgeId e, uint32_t head_rank) {
    for (FactId pr : es.premises_of(e)) {
      if (es.rank_of(pr) >= head_rank) return false;
    }
    return true;
  };
  auto apply_kill = [&](EdgeId e, FactId h) {
    if (!killed.insert(e).second) return;
    if (tentative.count(h) != 0) return;
    const uint32_t head_rank = es.rank_of(h);
    auto it = sup.find(h);
    if (it == sup.end()) {
      // First touch: count the head's surviving supporting derivations
      // (e is already in `killed`, so it never counts).
      uint32_t cnt = 0;
      for (EdgeId d : es.derivations_of(h)) {
        if (killed.count(d) == 0 && is_supporting(d, head_rank)) ++cnt;
      }
      it = sup.emplace(h, cnt).first;
    } else if (it->second > 0 && is_supporting(e, head_rank)) {
      --it->second;
    }
    if (it->second == 0) {
      tentative.insert(h);
      tentative_list.push_back(h);
    }
  };
  std::vector<FactId> frontier = seeds;
  std::vector<std::pair<EdgeId, FactId>> gathered;
  while (!frontier.empty()) {
    gathered.clear();
    const size_t n = frontier.size();
    if (opts_.pool != nullptr && n >= opts_.min_rows_to_partition) {
      const size_t chunk = (n + 15) / 16;
      const size_t tasks = (n + chunk - 1) / chunk;
      std::vector<std::vector<std::pair<EdgeId, FactId>>> outs(tasks);
      opts_.pool->ParallelFor(tasks, [&](size_t t) {
        const size_t end = std::min(n, (t + 1) * chunk);
        for (size_t i = t * chunk; i < end; ++i) {
          for (EdgeId e : es.uses_of(frontier[i])) {
            FactId h = es.head_of(e);
            if (in_this_scc(h)) outs[t].emplace_back(e, h);
          }
        }
      });
      for (auto& o : outs) {
        gathered.insert(gathered.end(), o.begin(), o.end());
      }
    } else {
      for (FactId f : frontier) {
        for (EdgeId e : es.uses_of(f)) {
          FactId h = es.head_of(e);
          if (in_this_scc(h)) gathered.emplace_back(e, h);
        }
      }
    }
    const size_t already_dead = tentative_list.size();
    for (const auto& [e, h] : gathered) apply_kill(e, h);
    frontier.assign(tentative_list.begin() +
                        static_cast<ptrdiff_t>(already_dead),
                    tentative_list.end());
  }
  stats_.cone_input += sup.size();

  // 3. Rescue: a tentatively dead fact survives if some derivation avoids
  // every seed and every (still-)dead fact — the least fixpoint over the
  // tentative set, so mutually-supporting ungrounded cycles stay dead while
  // facts with an alternate non-supporting derivation (a longer surviving
  // path, or a premise whose rank drifted upward) are kept in place without
  // any row churn. Rank drift only ever causes spurious tentative deaths,
  // never missed ones, and a rescue re-canonicalizes all ranks below.
  std::unordered_set<FactId> dead(tentative.begin(), tentative.end());
  uint64_t rescued = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (FactId h : tentative_list) {
      if (dead.count(h) == 0) continue;
      for (EdgeId e : es.derivations_of(h)) {
        bool alive = true;
        for (FactId pr : es.premises_of(e)) {
          if (seed_set.count(pr) != 0 || dead.count(pr) != 0) {
            alive = false;
            break;
          }
        }
        if (alive) {
          dead.erase(h);
          ++rescued;
          changed = true;
          break;
        }
      }
    }
  }
  stats_.overdeleted += tentative_list.size();
  stats_.rederived += rescued;
  stats_.cone_pruned += sup.size() - dead.size();

  // 4. Erase the dead facts and stage the outward deltas.
  std::map<std::string, std::unique_ptr<Relation>> dead_rows;
  std::vector<FactId> dead_ids;
  for (FactId h : tentative_list) {
    if (dead.count(h) == 0) continue;
    dead_ids.push_back(h);
    auto& d = dead_rows[es.pred_of(h)];
    if (d == nullptr) {
      Relation* rel = result_.Find(es.pred_of(h));
      d = std::make_unique<Relation>(rel->arity(), rel->storage_options());
    }
    d->Insert(es.row_of(h));
  }
  for (auto& [p, d] : dead_rows) {
    Relation* rel = result_.Find(p);
    for (size_t r = 0; r < d->size(); ++r) rel->Erase(d->row(r));
    rel->SyncShards();
    stats_.idb_deleted += d->size();
  }

  // 5. Retire invalidated edges: every derivation headed by a dead fact,
  // and every use of a seed or dead fact whose head is in this SCC. Kills
  // caused by since-rescued facts are NOT retired — those instantiations
  // still hold. Uses with heads in later SCCs survive until those SCCs' own
  // passes (the dead rows join the delta map, so SccAffected guarantees the
  // pass runs).
  std::vector<EdgeId> retire;
  for (FactId f : dead_ids) {
    for (EdgeId e : es.derivations_of(f)) retire.push_back(e);
  }
  auto retire_uses = [&](FactId f) {
    for (EdgeId e : es.uses_of(f)) {
      if (in_this_scc(es.head_of(e))) retire.push_back(e);
    }
  };
  for (FactId f : seeds) retire_uses(f);
  for (FactId f : dead_ids) retire_uses(f);
  for (EdgeId e : retire) es.RemoveEdge(e);  // no-op on duplicates

  // A rescued fact now rests on a derivation that was not rank-supporting,
  // so the height invariant may be broken for it and anything above it;
  // recompute all ranks. Rescues are rare (they need cyclic or drifted
  // support), so the full O(E log V) sweep does not show up in steady state.
  if (rescued > 0) es.RecomputeRanks();

  for (auto& [p, d] : dead_rows) {
    (*delta)[p] = d.get();
    owned->push_back(std::move(d));
  }
  return Status::OK();
}

Status MaterializedView::DeleteRecursiveDRed(
    const std::vector<std::string>& scc, DeltaMap* delta,
    std::vector<std::unique_ptr<Relation>>* owned) {
  std::set<std::string> in_scc(scc.begin(), scc.end());
  // 1. Over-delete: everything in the SCC derivable (transitively) from a
  // deleted fact, evaluated over the OLD state — lower strata as stored ∪
  // deleted, SCC relations as stored (their rows are not erased yet).
  std::map<std::string, std::unique_ptr<Relation>> d_all, d_cur, d_nxt;
  for (const std::string& p : scc) {
    Relation* rel = result_.Find(p);
    d_all[p] = std::make_unique<Relation>(rel->arity(), rel->storage_options());
    d_cur[p] = std::make_unique<Relation>(rel->arity(), rel->storage_options());
    d_nxt[p] = std::make_unique<Relation>(rel->arity(), rel->storage_options());
  }
  auto old_views = [&](const CompiledRule& rule, size_t j) {
    std::vector<RelationView> views;
    views.reserve(rule.body().size());
    for (size_t k = 0; k < rule.body().size(); ++k) {
      const CompiledAtom& lit = rule.body()[k];
      if (lit.kind != LitKind::kRelation || k == j) {
        views.push_back(RelationView{});
        continue;
      }
      if (in_scc.count(lit.predicate) > 0) {
        views.push_back(RelationView{CurrentRel(lit.predicate), nullptr});
        continue;
      }
      Relation* cur = CurrentRel(lit.predicate);
      auto dk = delta->find(lit.predicate);
      Relation* d = dk != delta->end() ? const_cast<Relation*>(dk->second)
                                       : nullptr;
      views.push_back(RelationView{cur, d});
    }
    return views;
  };

  // Seed from the lower-stratum deletions.
  for (const std::string& p : scc) {
    Relation* rel = result_.Find(p);
    for (size_t ri : pred_info_.at(p).rules) {
      const CompiledRule& rule = rules_[ri];
      for (size_t j = 0; j < rule.body().size(); ++j) {
        const CompiledAtom& lit_j = rule.body()[j];
        if (lit_j.kind != LitKind::kRelation) continue;
        if (in_scc.count(lit_j.predicate) > 0) continue;
        auto dj = delta->find(lit_j.predicate);
        if (dj == delta->end() || dj->second->empty()) continue;
        FACTLOG_RETURN_IF_ERROR(RunPassCollect(
            ri, old_views(rule, j), j, dj->second, /*premises=*/false,
            [&](const std::vector<ValueId>& row,
                const std::vector<eval::FactKey>*) {
              if (rel->Contains(row.data()) && d_all[p]->Insert(row)) {
                d_cur[p]->Insert(row);
              }
            }));
      }
    }
  }
  // Transitive over-deletion within the SCC.
  uint64_t iterations = 0;
  while (true) {
    bool any = false;
    for (const std::string& p : scc) {
      if (!d_cur[p]->empty()) {
        any = true;
        break;
      }
    }
    if (!any) break;
    if (++iterations > opts_.eval.max_iterations) {
      return Status::ResourceExhausted(
          "iteration budget exceeded during over-deletion");
    }
    for (const std::string& p : scc) {
      Relation* rel = result_.Find(p);
      for (size_t ri : pred_info_.at(p).rules) {
        const CompiledRule& rule = rules_[ri];
        for (size_t j = 0; j < rule.body().size(); ++j) {
          const CompiledAtom& lit_j = rule.body()[j];
          if (lit_j.kind != LitKind::kRelation) continue;
          if (in_scc.count(lit_j.predicate) == 0) continue;
          if (d_cur[lit_j.predicate]->empty()) continue;
          FACTLOG_RETURN_IF_ERROR(RunPassCollect(
              ri, old_views(rule, j), j, d_cur[lit_j.predicate].get(),
              /*premises=*/false,
              [&](const std::vector<ValueId>& row,
                  const std::vector<eval::FactKey>*) {
                if (rel->Contains(row.data()) && d_all[p]->Insert(row)) {
                  d_nxt[p]->Insert(row);
                }
              }));
        }
      }
    }
    for (const std::string& p : scc) {
      d_cur[p] = std::move(d_nxt[p]);
      d_nxt[p] = std::make_unique<Relation>(d_cur[p]->arity(),
                                            d_cur[p]->storage_options());
    }
  }

  uint64_t overdeleted = 0;
  for (const std::string& p : scc) overdeleted += d_all[p]->size();
  stats_.overdeleted += overdeleted;
  if (overdeleted == 0) return Status::OK();

  // 2. Erase the over-deleted facts.
  for (const std::string& p : scc) {
    Relation* rel = result_.Find(p);
    const Relation& d = *d_all[p];
    for (size_t r = 0; r < d.size(); ++r) rel->Erase(d.row(r));
    rel->SyncShards();
  }

  // 3. Re-derive: candidates with a derivation over the remaining state
  // (including other candidates already re-derived) re-enter the relation.
  // The candidate guard literal bounds every enumeration by the candidates;
  // after the first full round, only passes driven by the newly re-derived
  // facts run, so the fixpoint does delta-sized work per round instead of
  // rescanning every remaining candidate.
  // Each internal fixpoint gets the full iteration budget (the header's
  // contract); over-deletion rounds must not eat into re-derivation's.
  uint64_t rederive_iterations = 0;
  std::map<std::string, std::unique_ptr<Relation>> cand, renew;
  for (const std::string& p : scc) {
    cand[p] = std::make_unique<Relation>(d_all[p]->arity());
    cand[p]->Absorb(*d_all[p]);
    renew[p] = std::make_unique<Relation>(d_all[p]->arity());
  }
  std::map<std::string, std::set<std::vector<ValueId>>> pending;
  auto apply_pending = [&]() {
    for (auto& [p, rows] : pending) {
      Relation* rel = result_.Find(p);
      for (const std::vector<ValueId>& row : rows) {
        if (!cand[p]->Contains(row.data())) continue;
        cand[p]->Erase(row.data());
        rel->Insert(row);
        renew[p]->Insert(row);
        ++stats_.rederived;
      }
    }
    pending.clear();
  };
  // Guard literals resolve to the head's candidate relation; everything
  // else to its current (post-over-deletion) extent.
  auto rederive_view = [&](const CompiledAtom& lit,
                           const std::string& head) -> RelationView {
    if (lit.kind != LitKind::kRelation) return RelationView{};
    if (lit.predicate == cand_prefix_ + head) {
      return RelationView{cand[head].get(), nullptr};
    }
    return RelationView{CurrentRel(lit.predicate), nullptr};
  };

  // First round: every candidate against the post-over-deletion state (the
  // guard literal leads, so the scan is bounded by the candidates).
  for (const std::string& p : scc) {
    if (cand[p]->empty()) continue;
    for (size_t ri : pred_info_.at(p).rules) {
      const CompiledRule& rr = *rederive_rules_[ri];
      std::vector<RelationView> views;
      views.reserve(rr.body().size());
      for (const CompiledAtom& lit : rr.body()) {
        views.push_back(rederive_view(lit, p));
      }
      JoinStats js;
      ++stats_.delta_passes;
      FACTLOG_RETURN_IF_ERROR(EnumerateRule(
          rr, &db_->store(), views, /*track_premises=*/false, &js,
          [&](const std::vector<ValueId>& row,
              const std::vector<eval::FactKey>*) {
            pending[p].insert(row);
            return true;
          }));
    }
  }
  apply_pending();
  // Later rounds: only derivations through a newly re-derived fact.
  while (true) {
    bool any = false;
    for (const std::string& p : scc) {
      if (!renew[p]->empty()) {
        any = true;
        break;
      }
    }
    if (!any) break;
    if (++rederive_iterations > opts_.eval.max_iterations) {
      return Status::ResourceExhausted(
          "iteration budget exceeded during re-derivation");
    }
    std::map<std::string, std::unique_ptr<Relation>> driving;
    driving.swap(renew);
    for (const std::string& p : scc) {
      renew[p] = std::make_unique<Relation>(d_all[p]->arity());
      if (cand[p]->empty()) continue;
      for (size_t ri : pred_info_.at(p).rules) {
        for (const auto& [occ, rot] : rederive_occ_rules_[ri]) {
          // `occ` indexes the SOURCE rule body (the compiled rules_ body is
          // in plan order).
          const Relation* extent =
              driving.at(program_.rules()[ri].body()[occ].predicate()).get();
          if (extent->empty()) continue;
          // Rotated variant: the driving occurrence leads (delta-sized
          // scan), the candidate guard joins on its bound columns.
          std::vector<RelationView> views;
          views.reserve(rot->body().size());
          views.push_back(
              RelationView{const_cast<Relation*>(extent), nullptr});
          for (size_t k = 1; k < rot->body().size(); ++k) {
            views.push_back(rederive_view(rot->body()[k], p));
          }
          JoinStats js;
          ++stats_.delta_passes;
          FACTLOG_RETURN_IF_ERROR(EnumerateRule(
              *rot, &db_->store(), views, /*track_premises=*/false, &js,
              [&](const std::vector<ValueId>& row,
                  const std::vector<eval::FactKey>*) {
                pending[p].insert(row);
                return true;
              }));
        }
      }
    }
    apply_pending();
  }

  // 4. Outward deltas: candidates that never re-derived are the SCC's net
  // deletions (already erased from the relations above).
  for (const std::string& p : scc) {
    if (cand[p]->empty()) continue;
    stats_.idb_deleted += cand[p]->size();
    (*delta)[p] = cand[p].get();
    owned->push_back(std::move(cand[p]));
  }
  return Status::OK();
}

}  // namespace factlog::inc
