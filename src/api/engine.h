// factlog::api::Engine — the unified compile-and-execute facade.
//
// The engine owns an extensional database, compiles queries through the
// pass-manager pipeline (core/pipeline.h) under a selectable strategy, caches
// the resulting CompiledQuery plans, and executes them bottom-up (semi-naive)
// or top-down (SLD) to return AnswerSets:
//
//   api::Engine engine;
//   engine.AddPair("e", 1, 2);
//   engine.AddPair("e", 2, 3);
//   auto answers = engine.Query(
//       "t(X, Y) :- e(X, Y). t(X, Y) :- e(X, W), t(W, Y). ?- t(1, Y).");
//
// Plans are cached under (strategy, query adornment, canonicalized program +
// query), so re-asking a query — or asking it with renamed variables or
// reordered rules — reuses the compiled plan. Like Johansson's multi-prime
// argument reduction, the expensive precomputation (classification and the
// NP-hard factorability containments) is paid once and amortized over every
// subsequent execution. Every compilation ends with the join-plan pass
// (plan/join_plan.h), seeded with the engine's base-relation sizes; the
// stored plan::ProgramPlan drives body order, index prewarming, and
// parallel partitioning in all execution paths.
//
// Parallelism: with EngineOptions::num_threads > 0 the engine owns a
// work-stealing exec::ThreadPool. Single bottom-up queries then run the
// partitioned parallel fixpoint (exec/parallel_seminaive.h), and
// ExecuteBatch evaluates many queries concurrently against the frozen EDB
// while sharing the plan cache. The plan cache and counters are
// mutex-guarded, so Compile may be called from concurrent workers; concurrent
// misses on one key collapse into a single compilation (single-flight).
//
// Incremental maintenance: Materialize compiles a (program, query) and keeps
// its full IDB as a live view (inc::MaterializedView) that AddFact/RemoveFact
// update with delta-sized work — counting for non-recursive strata, DRed for
// recursive ones — instead of re-running the fixpoint. Query answers from a
// matching view directly. Mutations and queries must still be externally
// serialized; as a safety net an evaluation-epoch guard detects the common
// misuse, failing a mutation with kFailedPrecondition when a query is
// already executing (a query that *starts* during a mutation is still a
// race — the guard is detection, not mutual exclusion).
//
// Serving (StartServing): the engine switches to MVCC — reads pin an
// immutable snapshot of copy-on-write shards (serve/snapshot.h) while a
// single writer thread applies updates through the views and publishes a new
// epoch per batch (serve/server.h). On this path mutations never fail the
// evaluation-epoch guard: readers and the writer genuinely run concurrently,
// and SubmitQuery/SubmitUpdate provide the async request-queue front end
// (sessions, bounded admission, backpressure by rejection). The synchronous
// AddFact/RemoveFact/Query entry points transparently route through the
// serving machinery while it is active; the stop-the-world guard remains the
// contract only for non-serving engines.

#ifndef FACTLOG_API_ENGINE_H_
#define FACTLOG_API_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "analysis/lint.h"
#include "ast/program.h"
#include "common/status.h"
#include "core/pipeline.h"
#include "core/transform_pass.h"
#include "eval/database.h"
#include "eval/seminaive.h"
#include "eval/topdown.h"
#include "exec/batch.h"
#include "exec/thread_pool.h"
#include "inc/incremental.h"
#include "plan/stats_catalog.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "storage/storage_manager.h"

namespace factlog::api {

using core::CompiledQuery;
using core::Strategy;

/// How Engine::Execute runs a compiled plan.
enum class ExecutionMode {
  /// Semi-naive bottom-up fixpoint (the paper's default).
  kBottomUp,
  /// Top-down SLD resolution (the Prolog baseline of Examples 1.2 / 4.6).
  /// Note the magic-transformed plans are left-recursive on unbound goals,
  /// so recursive queries diverge under plain SLD exactly as in Prolog; the
  /// SldOptions budgets turn that into kResourceExhausted.
  kTopDown,
};

struct EngineOptions {
  /// Compilation knobs forwarded to the pass pipeline.
  core::PipelineOptions pipeline;
  /// Bottom-up evaluation budgets / strategy.
  eval::EvalOptions eval;
  /// Top-down resolution budgets (kTopDown only).
  eval::SldOptions sld;
  ExecutionMode execution = ExecutionMode::kBottomUp;
  /// Plan caching. Disable to recompile on every query.
  bool enable_plan_cache = true;
  /// Maximum cached plans; least recently used plans are evicted.
  size_t plan_cache_capacity = 128;
  /// Worker threads for the parallel fixpoint and ExecuteBatch. 0 keeps the
  /// engine fully sequential (no pool is created). The pool is built lazily
  /// on first use and reused for the engine's lifetime.
  size_t num_threads = 0;
  /// Storage shards per relation (base and derived alike): rows are
  /// hash-partitioned so the parallel fixpoint consumes delta shards in
  /// place and merges under per-shard locks. 0 and 1 both keep the flat
  /// single-shard layout. A few shards per worker thread (e.g. 2x
  /// num_threads) balances stealing granularity against per-shard overhead;
  /// answers are identical at any value.
  size_t num_shards = 1;
  /// Incremental maintenance: delta passes whose driving extent is sharded
  /// and at least this many rows fan out across the pool (see
  /// inc::IncrementalOptions::min_rows_to_partition).
  size_t inc_min_rows_to_partition = 64;
  /// Incremental maintenance: derivation-edge budget per view for
  /// slice-guided deletion in recursive SCCs (see
  /// inc::IncrementalOptions::max_derivation_edges). Views whose hypergraph
  /// would exceed it fall back to classic DRed; 0 disables edge tracking.
  uint64_t inc_max_derivation_edges = uint64_t{1} << 22;
  /// Database directory for disk-backed persistence. Filled in by
  /// Engine::Open — constructing an Engine directly leaves the engine fully
  /// in-memory regardless of this field.
  std::string db_path;
  /// Buffer-pool frames (4 KiB pages held in RAM) backing the paged row
  /// stores of a persistent engine. Datasets larger than the budget evaluate
  /// correctly through clock eviction; the budget only bounds residency.
  size_t storage_frame_budget = 1024;
};

/// Cumulative engine counters.
struct EngineStats {
  uint64_t compiles = 0;       // plans built (cache misses included)
  uint64_t cache_hits = 0;     // compiles avoided by the plan cache
  uint64_t executions = 0;     // plans executed (batch queries included)
  uint64_t batches = 0;        // ExecuteBatch calls
  uint64_t view_hits = 0;      // queries answered from a materialized view
  uint64_t view_updates = 0;   // AddFact/RemoveFact deltas propagated to views
  uint64_t plans_invalidated = 0;  // stale-plan guard firings: a cached plan's
                                   // costed extents drifted past 4x
  uint64_t plans_recosted = 0;     // cached plans re-planned in place from
                                   // measured cardinalities (no recompile)
  uint64_t replans = 0;            // mid-fixpoint driver switches (summed
                                   // eval::EvalStats::replans)
};

/// Counters of a persistent engine (Engine::Open); zero-valued otherwise.
struct PersistenceStats {
  storage::StorageStats storage;
  uint64_t facts_replayed = 0;       // WAL records applied on the last Open
  uint64_t views_restored = 0;       // materialized views rebuilt from meta
  uint64_t plans_restored = 0;       // cached plans warm-recompiled on Open
  uint64_t plans_dropped_stale = 0;  // persisted plans dropped: extent drift
                                     // beyond 4x, or unparseable
};

/// Per-query statistics (optional out-param of Query/Execute).
struct QueryStats {
  bool cache_hit = false;
  /// The answer came from a materialized view (no execution ran).
  bool view_hit = false;
  /// Lint warnings the mandatory lint pass reported for the source program
  /// (CompiledQuery::diagnostics; lint *errors* fail compilation instead).
  /// Filled on cache hits too — the warnings are a property of the plan.
  uint64_t lint_warnings = 0;
  /// Join-plan summary of the executed plan (filled by Execute from
  /// CompiledQuery::plans): rules carrying a plan, and how many of them the
  /// cost model ordered differently from their source body.
  uint64_t plan_rules = 0;
  uint64_t plan_reordered = 0;
  /// Microseconds spent compiling (0 on a cache hit) and executing.
  int64_t compile_us = 0;
  int64_t execute_us = 0;
  /// Bottom-up evaluation counters (kBottomUp).
  eval::EvalStats eval;
  /// Resolution counters (kTopDown).
  eval::SldStats sld;
};

/// Handle to a materialized view registered with an Engine. Views are keyed
/// by the plan-cache key of the (program, query, strategy) they materialize,
/// so a later Query with the same key answers from the view.
struct ViewHandle {
  std::string key;
};

class Engine {
 public:
  explicit Engine(EngineOptions options = {})
      : options_(std::move(options)),
        db_(eval::StorageOptions{options_.num_shards, {}}) {}

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Stops serving (draining in-flight requests) before tearing down.
  ~Engine();

  // ---- Persistence --------------------------------------------------------

  /// Opens (creating when absent) a disk-backed engine on database directory
  /// `path`: restores the last checkpoint — value store, base relations onto
  /// their checkpointed page chains, materialized views, cached plans — and
  /// replays the WAL's committed suffix through the normal mutation paths,
  /// so views stay consistent without re-evaluation. Mutations are logged to
  /// the WAL before they apply and committed once per epoch (per mutation
  /// synchronously; per installed snapshot while serving).
  static Result<std::unique_ptr<Engine>> Open(const std::string& path,
                                              EngineOptions options = {});

  /// Writes a checkpoint: pages every base relation into the table space,
  /// flushes dirty pages, persists the full catalog (values, relations,
  /// views, plans) atomically, and truncates the WAL. Requires a persistent
  /// engine, not serving, and no executing query.
  Status Checkpoint();

  /// Whether this engine came from Open (mutations are WAL-logged).
  bool persistent() const { return storage_ != nullptr; }
  PersistenceStats persistence_stats() const;

  /// The engine's extensional database. Mutating base relations does NOT
  /// invalidate cached plans (plans depend only on the program and query),
  /// but must not race with concurrently executing queries — prefer the
  /// AddFact/RemoveFact/LoadFacts entry points, which enforce that contract
  /// (kFailedPrecondition on a racing mutation) and keep materialized views
  /// maintained. Direct db() writes silently bypass both.
  eval::Database& db() { return db_; }
  const eval::Database& db() const { return db_; }

  // ---- EDB mutation -------------------------------------------------------

  /// Interns and inserts a ground fact `p(c1, ..., ck)`, propagating the
  /// delta into every live materialized view first. Fails with
  /// kFailedPrecondition while a query is executing. Duplicate facts are
  /// accepted no-ops.
  Status AddFact(const ast::Atom& fact);
  /// Removes a ground fact, propagating the deletion into every live view
  /// (DRed over-delete + re-derive for recursive predicates). Absent facts
  /// are accepted no-ops.
  Status RemoveFact(const ast::Atom& fact);
  /// Adds `rel(a, b)` for an integer pair (graph edges). Asserts (debug)
  /// that the mutation was legal; prefer AddFact where failure matters.
  void AddPair(const std::string& rel, int64_t a, int64_t b);
  /// Adds `rel(a)` for an integer.
  void AddUnit(const std::string& rel, int64_t a);
  /// Parses `text` (ground facts only, e.g. "e(1, 2). e(2, 3).") and adds
  /// every fact to the database (through AddFact, so views stay maintained).
  Status LoadFacts(const std::string& text);

  // ---- Static analysis ----------------------------------------------------

  /// Runs the static linter (analysis/lint.h) over `program` — and its query
  /// when set — under this engine's configuration: the database schema feeds
  /// the arity/reachability checks, and kTopDown execution downgrades safety
  /// violations to warnings (SLD resolves Prolog-style heads fine). Pure:
  /// nothing is compiled or cached. The same analysis runs as the mandatory
  /// opening pass of every compilation, where errors reject the program.
  analysis::LintReport Lint(const ast::Program& program) const;
  /// Parses `program_text` (query line optional) and lints it.
  Result<analysis::LintReport> Lint(const std::string& program_text) const;

  // ---- Compile ------------------------------------------------------------

  /// Compiles (program, query) under `strategy`, consulting the plan cache.
  /// The returned plan is shared with the cache; it is immutable. Thread-safe:
  /// concurrent misses on the same key collapse into one compilation
  /// (single-flight) — the first caller compiles, the rest block on the
  /// result and count as cache hits, so the NP-hard factorability containment
  /// checks are paid exactly once per key.
  Result<std::shared_ptr<const CompiledQuery>> Compile(
      const ast::Program& program, const ast::Atom& query,
      Strategy strategy = Strategy::kAuto, QueryStats* stats = nullptr);

  // ---- Query (compile + execute) ------------------------------------------

  /// Compiles and executes. Answers are the bindings of the query's distinct
  /// variables, named by *this* call's query — on a cache hit against a plan
  /// compiled from renamed variables, the columns are renamed back to the
  /// caller's names. When a materialized view matches the plan key, answers
  /// come from the view without executing anything.
  Result<eval::AnswerSet> Query(const ast::Program& program,
                                const ast::Atom& query,
                                Strategy strategy = Strategy::kAuto,
                                QueryStats* stats = nullptr);

  /// Parses `program_text` (which must contain a `?- query.` line), then
  /// compiles and executes it.
  Result<eval::AnswerSet> Query(const std::string& program_text,
                                Strategy strategy = Strategy::kAuto,
                                QueryStats* stats = nullptr);

  /// Executes an already-compiled plan against the engine's database. With
  /// num_threads > 0, bottom-up plans run the partitioned parallel fixpoint
  /// (unless provenance tracking or the naive strategy is requested, which
  /// stay on the sequential oracle).
  Result<eval::AnswerSet> Execute(const CompiledQuery& plan,
                                  QueryStats* stats = nullptr);

  // ---- Batch --------------------------------------------------------------

  /// One query of a batch: a program, the query atom, and the strategy to
  /// compile it under.
  struct BatchQuery {
    ast::Program program;
    ast::Atom query;
    Strategy strategy = Strategy::kAuto;
  };

  /// Compiles and executes every query concurrently on the engine's pool
  /// against the current database snapshot, sharing the plan cache. The
  /// database must not be mutated during the call. Requires kBottomUp
  /// execution. Per-query failures are reported in the result's stats; the
  /// call only fails outright on infrastructure errors.
  Result<exec::BatchResult> ExecuteBatch(const std::vector<BatchQuery>& batch);

  /// Convenience: every element of `program_texts` is a full program with a
  /// `?- query.` line, compiled under `strategy`.
  Result<exec::BatchResult> ExecuteBatch(
      const std::vector<std::string>& program_texts,
      Strategy strategy = Strategy::kAuto);

  // ---- Materialized views -------------------------------------------------

  /// Compiles (program, query), evaluates it once, and keeps the full IDB as
  /// a live view that AddFact/RemoveFact maintain incrementally. Later
  /// Query calls with the same plan key answer from the view. Idempotent:
  /// materializing an already-live key returns the existing handle.
  Result<ViewHandle> Materialize(const ast::Program& program,
                                 const ast::Atom& query,
                                 Strategy strategy = Strategy::kAuto,
                                 QueryStats* stats = nullptr);
  /// Parses `program_text` (must contain a `?- query.` line) and
  /// materializes it.
  Result<ViewHandle> Materialize(const std::string& program_text,
                                 Strategy strategy = Strategy::kAuto);
  /// Answers directly from a materialized view.
  Result<eval::AnswerSet> AnswerFromView(const ViewHandle& handle);
  /// Maintenance counters of a view (cumulative plus the `last_update`
  /// snapshot of the most recent propagation).
  Result<inc::ViewStats> ViewStatsFor(const ViewHandle& handle) const;
  /// Renders the derivation tree of a ground fact from the view's edge
  /// store ("why <fact>"): recursive facts expand through a recorded
  /// derivation, EDB and counting-maintained facts print as leaves.
  Result<std::string> ExplainFromView(const ViewHandle& handle,
                                      const ast::Atom& fact);
  /// The live view for `handle` (nullptr when dropped). Read-only
  /// introspection; answering queries should go through Query/AnswerFromView
  /// so the evaluation-epoch guard applies.
  const inc::MaterializedView* view(const ViewHandle& handle) const;
  /// Drops a view (its plan stays cached). Unknown handles are no-ops.
  void DropView(const ViewHandle& handle);
  size_t num_views() const;

  // ---- Async serving ------------------------------------------------------

  /// Switches the engine into serving mode: installs the first MVCC snapshot
  /// epoch and starts the request-queue front end on the engine's pool.
  /// Requires kBottomUp execution and num_threads > 0. Idempotent while
  /// already serving. While serving:
  ///   * SubmitQuery executes against a pinned snapshot on a pool worker —
  ///     concurrent with updates, never failed by the epoch guard;
  ///   * SubmitUpdate is serialized through the single writer thread, which
  ///     applies it via incremental view maintenance and publishes a new
  ///     epoch per drained batch;
  ///   * the synchronous entry points reroute: Query evaluates inline against
  ///     the current snapshot, AddFact/RemoveFact submit-and-wait through the
  ///     writer; ExecuteBatch and Materialize fail with kFailedPrecondition
  ///     (materialize views before serving).
  Status StartServing(const serve::ServeOptions& serve_options = {});
  /// Drains in-flight requests, stops the writer, and returns the engine to
  /// stop-the-world mode. Idempotent.
  Status StopServing();
  bool serving() const {
    return serving_active_.load(std::memory_order_acquire);
  }

  /// Sessions scope per-client in-flight budgets. Requires serving.
  /// OpenSession returns 0 when the engine is not serving.
  uint64_t OpenSession();
  Status CloseSession(uint64_t session);

  /// Async query against the current snapshot epoch; see serve::Server for
  /// the callback/backpressure contract.
  Status SubmitQuery(uint64_t session, ast::Program program, ast::Atom query,
                     Strategy strategy, serve::QueryCallback done);
  std::future<serve::QueryResponse> SubmitQuery(
      uint64_t session, ast::Program program, ast::Atom query,
      Strategy strategy = Strategy::kAuto);
  /// Async update (insert = true adds `fact`, false removes it), applied in
  /// submission order by the writer. The response's epoch is the first epoch
  /// containing the update.
  Status SubmitUpdate(uint64_t session, bool insert, ast::Atom fact,
                      serve::UpdateCallback done);
  std::future<serve::UpdateResponse> SubmitUpdate(uint64_t session,
                                                  bool insert,
                                                  ast::Atom fact);

  /// Serving counters (zero-valued when not serving).
  serve::ServerStats serving_stats() const;
  /// The currently installed snapshot epoch (0 when not serving).
  uint64_t serving_epoch() const;

  // ---- Introspection ------------------------------------------------------

  /// Number of queries currently executing (evaluation-epoch guard).
  /// Mutations fail with kFailedPrecondition while this is nonzero.
  int64_t running_queries() const {
    return active_queries_.load(std::memory_order_acquire);
  }

  const EngineOptions& options() const { return options_; }
  /// Snapshot of the cumulative counters (thread-safe).
  EngineStats stats() const;
  size_t plan_cache_size() const;
  void ClearPlanCache();

  /// The runtime statistics catalog: per-(predicate, adornment) cardinalities
  /// observed by every execution path, decayed across runs. Seeds the cost
  /// model of each compilation and of in-place plan re-costs; persisted in
  /// checkpoints. Thread-safe (own internal lock).
  const plan::StatsCatalog& stats_catalog() const { return stats_catalog_; }

  /// The cache key for (program, query, strategy): the requested strategy,
  /// the query's adornment pattern, and the canonicalized program + query.
  /// Exposed for tests.
  static std::string PlanCacheKey(const ast::Program& program,
                                  const ast::Atom& query, Strategy strategy);

 private:
  struct CacheEntry {
    std::shared_ptr<const CompiledQuery> plan;
    std::list<std::string>::iterator lru_pos;
  };

  /// One in-flight compilation (single-flight): the first cache miss on a
  /// key owns it, later misses block on `cv` and share the outcome.
  struct InFlightCompile {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;  // guarded by mu
    Status status;
    std::shared_ptr<const CompiledQuery> plan;
  };

  /// RAII evaluation-epoch guard: while alive, mutations fail with
  /// kFailedPrecondition instead of racing the evaluation.
  class QueryScope {
   public:
    explicit QueryScope(const Engine* engine) : engine_(engine) {
      engine_->active_queries_.fetch_add(1, std::memory_order_acq_rel);
    }
    ~QueryScope() {
      engine_->active_queries_.fetch_sub(1, std::memory_order_acq_rel);
    }
    QueryScope(const QueryScope&) = delete;
    QueryScope& operator=(const QueryScope&) = delete;

   private:
    const Engine* engine_;
  };

  /// Per-engine serving state: the snapshot publication side of the server.
  struct ServingState {
    serve::SnapshotBuilder builder;
    serve::SnapshotManager snapshots;
    serve::IndexVocabulary vocab;
  };

  /// The engine's thread pool, created on first use (nullptr when
  /// num_threads == 0).
  exec::ThreadPool* EnsurePool();
  /// The configured pipeline options with the join planner's extent hints
  /// seeded from the current base-relation sizes (compile-time planning sees
  /// the data the paper's compile-time factoring sees: the EDB at hand).
  /// With `hint_db` the hints come from that database instead — serving
  /// compiles pass the pinned snapshot, so planning neither reads the live
  /// relations map mid-mutation nor takes the epoch guard.
  core::PipelineOptions PipelineOptionsForCompile(
      const eval::Database* hint_db = nullptr) const;
  /// Cache-enabled compilation against a precomputed plan key (so callers
  /// that already derived the key for a view lookup don't canonicalize the
  /// program a second time). `hint_db` as in PipelineOptionsForCompile.
  Result<std::shared_ptr<const CompiledQuery>> CompileWithKey(
      const ast::Program& program, const ast::Atom& query, Strategy strategy,
      QueryStats* stats, const std::string& key,
      const eval::Database* hint_db = nullptr);
  /// AddFact/RemoveFact bodies without the epoch guard: the serving writer
  /// thread is the only mutator, so the guard is unnecessary there.
  Status AddFactImpl(const ast::Atom& fact);
  Status RemoveFactImpl(const ast::Atom& fact);
  /// Writer-side install: builds the adaptive indices readers registered,
  /// snapshots the database and every view's answer relation, and publishes
  /// the epoch. Returns the new epoch.
  uint64_t InstallServingSnapshot();
  /// Reader-side execution against the pinned snapshot (the serve::Server
  /// read hook, also the inline Query path while serving).
  void ServingRead(const ast::Program& program, const ast::Atom& query,
                   Strategy strategy, serve::QueryResponse* resp);
  /// kFailedPrecondition when a query is executing (mutations must not race).
  Status CheckMutable(const char* op) const;
  /// Open()'s body: attaches the table space, restores the checkpoint, and
  /// replays the WAL (under replaying_, so replay is not re-logged).
  Status InitStorage();
  Status RestoreFromCheckpoint();
  Status ReplayWal();
  /// Commits the open WAL epoch (one fsync); no-op when nothing was logged,
  /// when the engine is in-memory, or during replay.
  Status CommitStorage();
  /// Folds one evaluation's measured cardinalities (per-literal probe
  /// selectivities, per-iteration delta means, fixpoint IDB extents) into
  /// the statistics catalog and accumulates the replan counter.
  void RecordEvalObservations(const eval::EvalStats& es);
  /// Re-plans a drifted cache entry's join orders in place against current
  /// extents and the statistics catalog — the transform pipeline's output is
  /// kept, zero recompiles. Refreshes planner_hints (re-arming the drift
  /// guard) and recomputes the L104 cartesian-join verdict against the
  /// re-costed plan. Caller holds mu_.
  void RecostCacheEntry(CacheEntry* entry, const eval::Database& cost_db);
  /// The view matching `key`, or nullptr.
  inc::MaterializedView* FindView(const std::string& key);
  inc::IncrementalOptions MakeIncOptions();
  /// Renames answer columns to the caller's query variables (the cached
  /// plan's query may use different names).
  static void RenameAnswerVars(const ast::Atom& query,
                               eval::AnswerSet* answers);

  EngineOptions options_;
  /// Persistence coordinator (null for in-memory engines). Declared before
  /// db_ so relations can release their paged stores while the manager's
  /// shared TableSpace is still reachable through them.
  std::unique_ptr<storage::StorageManager> storage_;
  /// True while Open replays the WAL: mutations then skip re-logging and
  /// per-mutation commits.
  bool replaying_ = false;
  /// Last epoch handed to CommitEpoch (monotone; seeded from the checkpoint).
  uint64_t storage_epoch_ = 0;
  /// Open-time restore counters (written single-threaded during Open).
  uint64_t facts_replayed_ = 0;
  uint64_t views_restored_ = 0;
  uint64_t plans_restored_ = 0;
  uint64_t plans_dropped_stale_ = 0;
  eval::Database db_;

  /// Runtime statistics catalog (internally locked; safe to touch while
  /// holding mu_ or view_mu_ — it never takes either).
  plan::StatsCatalog stats_catalog_;

  /// Guards stats_, lru_, cache_, inflight_, and pool_ creation.
  mutable std::mutex mu_;
  EngineStats stats_;
  /// Most recently used key at the front.
  std::list<std::string> lru_;
  std::map<std::string, CacheEntry> cache_;
  std::map<std::string, std::shared_ptr<InFlightCompile>> inflight_;
  /// Materialized views by plan-cache key, guarded — map structure and view
  /// contents alike — by view_mu_. The unique_ptrs are stable, so a view
  /// located under the lock stays valid after it drops (views are only
  /// erased by DropView, which requires the usual external serialization
  /// against in-flight queries).
  std::map<std::string, std::unique_ptr<inc::MaterializedView>> views_;
  /// Guards views_ and serializes view access: map registration/lookup,
  /// delta propagation, and answering (Answer may build indices lazily).
  /// Never nested with mu_ — every section takes exactly one of the two.
  mutable std::mutex view_mu_;
  std::unique_ptr<exec::ThreadPool> pool_;
  mutable std::atomic<int64_t> active_queries_{0};
  /// Serving members are declared after pool_ so the server (whose in-flight
  /// tasks run on the pool) is destroyed first. serving_active_ gates the
  /// synchronous entry points' rerouting.
  std::atomic<bool> serving_active_{false};
  std::unique_ptr<ServingState> serving_;
  std::unique_ptr<serve::Server> server_;
  /// The server session the synchronous AddFact/RemoveFact reroute uses.
  uint64_t engine_session_ = 0;
};

}  // namespace factlog::api

#endif  // FACTLOG_API_ENGINE_H_
