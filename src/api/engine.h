// factlog::api::Engine — the unified compile-and-execute facade.
//
// The engine owns an extensional database, compiles queries through the
// pass-manager pipeline (core/pipeline.h) under a selectable strategy, caches
// the resulting CompiledQuery plans, and executes them bottom-up (semi-naive)
// or top-down (SLD) to return AnswerSets:
//
//   api::Engine engine;
//   engine.AddPair("e", 1, 2);
//   engine.AddPair("e", 2, 3);
//   auto answers = engine.Query(
//       "t(X, Y) :- e(X, Y). t(X, Y) :- e(X, W), t(W, Y). ?- t(1, Y).");
//
// Plans are cached under (strategy, query adornment, canonicalized program +
// query), so re-asking a query — or asking it with renamed variables or
// reordered rules — reuses the compiled plan. Like Johansson's multi-prime
// argument reduction, the expensive precomputation (classification and the
// NP-hard factorability containments) is paid once and amortized over every
// subsequent execution.
//
// Parallelism: with EngineOptions::num_threads > 0 the engine owns a
// work-stealing exec::ThreadPool. Single bottom-up queries then run the
// partitioned parallel fixpoint (exec/parallel_seminaive.h), and
// ExecuteBatch evaluates many queries concurrently against the frozen EDB
// while sharing the plan cache. The plan cache and counters are
// mutex-guarded, so Compile may be called from concurrent workers; mutating
// the database (AddFact/LoadFacts) must still be externally serialized
// against running queries.

#ifndef FACTLOG_API_ENGINE_H_
#define FACTLOG_API_ENGINE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "ast/program.h"
#include "common/status.h"
#include "core/pipeline.h"
#include "core/transform_pass.h"
#include "eval/database.h"
#include "eval/seminaive.h"
#include "eval/topdown.h"
#include "exec/batch.h"
#include "exec/thread_pool.h"

namespace factlog::api {

using core::CompiledQuery;
using core::Strategy;

/// How Engine::Execute runs a compiled plan.
enum class ExecutionMode {
  /// Semi-naive bottom-up fixpoint (the paper's default).
  kBottomUp,
  /// Top-down SLD resolution (the Prolog baseline of Examples 1.2 / 4.6).
  /// Note the magic-transformed plans are left-recursive on unbound goals,
  /// so recursive queries diverge under plain SLD exactly as in Prolog; the
  /// SldOptions budgets turn that into kResourceExhausted.
  kTopDown,
};

struct EngineOptions {
  /// Compilation knobs forwarded to the pass pipeline.
  core::PipelineOptions pipeline;
  /// Bottom-up evaluation budgets / strategy.
  eval::EvalOptions eval;
  /// Top-down resolution budgets (kTopDown only).
  eval::SldOptions sld;
  ExecutionMode execution = ExecutionMode::kBottomUp;
  /// Plan caching. Disable to recompile on every query.
  bool enable_plan_cache = true;
  /// Maximum cached plans; least recently used plans are evicted.
  size_t plan_cache_capacity = 128;
  /// Worker threads for the parallel fixpoint and ExecuteBatch. 0 keeps the
  /// engine fully sequential (no pool is created). The pool is built lazily
  /// on first use and reused for the engine's lifetime.
  size_t num_threads = 0;
  /// Storage shards per relation (base and derived alike): rows are
  /// hash-partitioned so the parallel fixpoint consumes delta shards in
  /// place and merges under per-shard locks. 0 and 1 both keep the flat
  /// single-shard layout. A few shards per worker thread (e.g. 2x
  /// num_threads) balances stealing granularity against per-shard overhead;
  /// answers are identical at any value.
  size_t num_shards = 1;
};

/// Cumulative engine counters.
struct EngineStats {
  uint64_t compiles = 0;       // plans built (cache misses included)
  uint64_t cache_hits = 0;     // compiles avoided by the plan cache
  uint64_t executions = 0;     // plans executed (batch queries included)
  uint64_t batches = 0;        // ExecuteBatch calls
};

/// Per-query statistics (optional out-param of Query/Execute).
struct QueryStats {
  bool cache_hit = false;
  /// Microseconds spent compiling (0 on a cache hit) and executing.
  int64_t compile_us = 0;
  int64_t execute_us = 0;
  /// Bottom-up evaluation counters (kBottomUp).
  eval::EvalStats eval;
  /// Resolution counters (kTopDown).
  eval::SldStats sld;
};

class Engine {
 public:
  explicit Engine(EngineOptions options = {})
      : options_(std::move(options)),
        db_(eval::StorageOptions{options_.num_shards, {}}) {}

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// The engine's extensional database. Mutating base relations does NOT
  /// invalidate cached plans (plans depend only on the program and query),
  /// but must not race with concurrently executing queries.
  eval::Database& db() { return db_; }
  const eval::Database& db() const { return db_; }

  // ---- EDB loading conveniences -------------------------------------------

  /// Interns and inserts a ground fact `p(c1, ..., ck)`.
  Status AddFact(const ast::Atom& fact) { return db_.AddFact(fact); }
  /// Adds `rel(a, b)` for an integer pair (graph edges).
  void AddPair(const std::string& rel, int64_t a, int64_t b) {
    db_.AddPair(rel, a, b);
  }
  /// Adds `rel(a)` for an integer.
  void AddUnit(const std::string& rel, int64_t a) { db_.AddUnit(rel, a); }
  /// Parses `text` (ground facts only, e.g. "e(1, 2). e(2, 3).") and adds
  /// every fact to the database.
  Status LoadFacts(const std::string& text);

  // ---- Compile ------------------------------------------------------------

  /// Compiles (program, query) under `strategy`, consulting the plan cache.
  /// The returned plan is shared with the cache; it is immutable. Thread-safe
  /// (the cache is mutex-guarded; concurrent misses on the same key may
  /// compile twice, last one wins).
  Result<std::shared_ptr<const CompiledQuery>> Compile(
      const ast::Program& program, const ast::Atom& query,
      Strategy strategy = Strategy::kAuto, QueryStats* stats = nullptr);

  // ---- Query (compile + execute) ------------------------------------------

  /// Compiles and executes. Answers are the bindings of the query's distinct
  /// variables (on a cache hit, variable *names* come from the plan's query,
  /// which may differ from `query`'s if the caller renamed them).
  Result<eval::AnswerSet> Query(const ast::Program& program,
                                const ast::Atom& query,
                                Strategy strategy = Strategy::kAuto,
                                QueryStats* stats = nullptr);

  /// Parses `program_text` (which must contain a `?- query.` line), then
  /// compiles and executes it.
  Result<eval::AnswerSet> Query(const std::string& program_text,
                                Strategy strategy = Strategy::kAuto,
                                QueryStats* stats = nullptr);

  /// Executes an already-compiled plan against the engine's database. With
  /// num_threads > 0, bottom-up plans run the partitioned parallel fixpoint
  /// (unless provenance tracking or the naive strategy is requested, which
  /// stay on the sequential oracle).
  Result<eval::AnswerSet> Execute(const CompiledQuery& plan,
                                  QueryStats* stats = nullptr);

  // ---- Batch --------------------------------------------------------------

  /// One query of a batch: a program, the query atom, and the strategy to
  /// compile it under.
  struct BatchQuery {
    ast::Program program;
    ast::Atom query;
    Strategy strategy = Strategy::kAuto;
  };

  /// Compiles and executes every query concurrently on the engine's pool
  /// against the current database snapshot, sharing the plan cache. The
  /// database must not be mutated during the call. Requires kBottomUp
  /// execution. Per-query failures are reported in the result's stats; the
  /// call only fails outright on infrastructure errors.
  Result<exec::BatchResult> ExecuteBatch(const std::vector<BatchQuery>& batch);

  /// Convenience: every element of `program_texts` is a full program with a
  /// `?- query.` line, compiled under `strategy`.
  Result<exec::BatchResult> ExecuteBatch(
      const std::vector<std::string>& program_texts,
      Strategy strategy = Strategy::kAuto);

  // ---- Introspection ------------------------------------------------------

  const EngineOptions& options() const { return options_; }
  /// Snapshot of the cumulative counters (thread-safe).
  EngineStats stats() const;
  size_t plan_cache_size() const;
  void ClearPlanCache();

  /// The cache key for (program, query, strategy): the requested strategy,
  /// the query's adornment pattern, and the canonicalized program + query.
  /// Exposed for tests.
  static std::string PlanCacheKey(const ast::Program& program,
                                  const ast::Atom& query, Strategy strategy);

 private:
  struct CacheEntry {
    std::shared_ptr<const CompiledQuery> plan;
    std::list<std::string>::iterator lru_pos;
  };

  /// The engine's thread pool, created on first use (nullptr when
  /// num_threads == 0).
  exec::ThreadPool* EnsurePool();

  EngineOptions options_;
  eval::Database db_;

  /// Guards stats_, lru_, cache_, and pool_ creation.
  mutable std::mutex mu_;
  EngineStats stats_;
  /// Most recently used key at the front.
  std::list<std::string> lru_;
  std::map<std::string, CacheEntry> cache_;
  std::unique_ptr<exec::ThreadPool> pool_;
};

}  // namespace factlog::api

#endif  // FACTLOG_API_ENGINE_H_
