#include "api/engine.h"

#include <chrono>
#include <cstdio>
#include <utility>

#include "ast/parser.h"
#include "common/dcheck.h"
#include "core/canonical.h"
#include "exec/parallel_seminaive.h"
#include "storage/log_records.h"
#include "storage/paged_store.h"

namespace factlog::api {

namespace {

int64_t MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Stale-plan threshold: a plan whose costed extents drifted beyond this
/// factor (either direction) is re-costed in place (cached plans) or dropped
/// (persisted plans on Open) rather than trusted. The +1 smooth keeps empty
/// relations comparable (0 vs 3 rows is not 4x drift worth acting on; 0 vs
/// 1000 is).
constexpr double kStaleDriftFactor = 4.0;

bool ExtentsDrifted(const std::map<std::string, uint64_t>& hints,
                    const eval::Database& db) {
  for (const auto& [pred, hinted] : hints) {
    const eval::Relation* rel = db.Find(pred);
    // Hints for predicates the database doesn't hold are measured IDB
    // extents from the statistics catalog — there is no live size to
    // compare them against, so they can't drift.
    if (rel == nullptr) continue;
    const double actual = static_cast<double>(rel->size()) + 1.0;
    const double costed = static_cast<double>(hinted) + 1.0;
    if (actual > costed * kStaleDriftFactor ||
        costed > actual * kStaleDriftFactor) {
      return true;
    }
  }
  return false;
}

}  // namespace

// ---- EDB mutation -----------------------------------------------------------

Status Engine::CheckMutable(const char* op) const {
  if (active_queries_.load(std::memory_order_acquire) != 0) {
    return Status::FailedPrecondition(
        std::string(op) +
        " while a query is executing; engine mutations must be serialized "
        "against evaluations");
  }
  return Status::OK();
}

Status Engine::AddFact(const ast::Atom& fact) {
  if (serving_active_.load(std::memory_order_acquire)) {
    // Route through the writer thread: the update is serialized with every
    // other serving update and published as a snapshot epoch. Never fails
    // the evaluation-epoch guard — serving readers don't hold it.
    return SubmitUpdate(engine_session_, /*insert=*/true, fact).get().status;
  }
  FACTLOG_RETURN_IF_ERROR(CheckMutable("AddFact"));
  FACTLOG_RETURN_IF_ERROR(AddFactImpl(fact));
  return CommitStorage();
}

Status Engine::AddFactImpl(const ast::Atom& fact) {
  FACTLOG_ASSIGN_OR_RETURN(std::vector<eval::ValueId> row,
                           db_.InternRow(fact));
  eval::Relation& rel = db_.GetOrCreate(fact.predicate(), fact.arity());
  if (rel.arity() != fact.arity()) {
    return Status::Invalid("arity mismatch for '" + fact.predicate() +
                           "': relation has arity " +
                           std::to_string(rel.arity()));
  }
  if (rel.Contains(row.data())) return Status::OK();  // duplicate: no-op
  // Log-before-apply, and only after the duplicate check: the WAL carries
  // exactly the mutations that change state, so replay is idempotent and
  // bounded by live traffic.
  if (storage_ != nullptr && !replaying_) {
    FACTLOG_RETURN_IF_ERROR(storage_->LogFact(/*insert=*/true, fact));
  }
  // Views propagate against the pre-insertion EDB (new state = stored ∪
  // delta), so the database row is inserted only after they are done. A
  // failing view poisons itself; the others still propagate and the row is
  // still inserted, so every non-poisoned view stays consistent with the
  // database. The first error is reported.
  Status result = Status::OK();
  bool have_views = false;
  std::vector<plan::ProbeObservation> view_obs;
  {
    std::lock_guard<std::mutex> lock(view_mu_);
    if (!views_.empty()) {
      have_views = true;
      eval::Relation delta(fact.arity(), rel.storage_options());
      delta.Insert(row);
      for (auto& [key, view] : views_) {
        Status st = view->ApplyInsert(fact.predicate(), delta);
        if (!st.ok() && result.ok()) result = st;
        std::vector<plan::ProbeObservation> obs = view->DrainObservations();
        view_obs.insert(view_obs.end(), obs.begin(), obs.end());
      }
    }
  }
  rel.Insert(row);
  stats_catalog_.ObserveBatch(view_obs);
  if (have_views) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.view_updates;
  }
  return result;
}

Status Engine::RemoveFact(const ast::Atom& fact) {
  if (serving_active_.load(std::memory_order_acquire)) {
    return SubmitUpdate(engine_session_, /*insert=*/false, fact).get().status;
  }
  FACTLOG_RETURN_IF_ERROR(CheckMutable("RemoveFact"));
  FACTLOG_RETURN_IF_ERROR(RemoveFactImpl(fact));
  return CommitStorage();
}

Status Engine::RemoveFactImpl(const ast::Atom& fact) {
  // The interned row is needed for the view delta; presence and the erase
  // itself are Database::RemoveFact's job. Deletions erase from the database
  // first: the views' old state is then stored ∪ delta, matching
  // ApplyDelete's contract.
  FACTLOG_ASSIGN_OR_RETURN(std::vector<eval::ValueId> row,
                           db_.InternRow(fact));
  // Log-before-apply needs the presence check pulled ahead of the erase;
  // absent facts are no-ops and never reach the WAL.
  if (storage_ != nullptr && !replaying_) {
    const eval::Relation* pre = db_.Find(fact.predicate());
    if (pre == nullptr || pre->arity() != fact.arity() ||
        !pre->Contains(row.data())) {
      return Status::OK();
    }
    FACTLOG_RETURN_IF_ERROR(storage_->LogFact(/*insert=*/false, fact));
  }
  FACTLOG_ASSIGN_OR_RETURN(bool removed, db_.RemoveFact(fact));
  if (!removed) return Status::OK();  // absent: no-op
  const eval::Relation* rel = db_.Find(fact.predicate());
  Status result = Status::OK();
  bool have_views = false;
  std::vector<plan::ProbeObservation> view_obs;
  {
    std::lock_guard<std::mutex> lock(view_mu_);
    if (!views_.empty()) {
      have_views = true;
      eval::Relation delta(fact.arity(), rel->storage_options());
      delta.Insert(row);
      // As in AddFact: every view propagates (failures poison themselves),
      // and the first error is reported.
      for (auto& [key, view] : views_) {
        Status st = view->ApplyDelete(fact.predicate(), delta);
        if (!st.ok() && result.ok()) result = st;
        std::vector<plan::ProbeObservation> obs = view->DrainObservations();
        view_obs.insert(view_obs.end(), obs.begin(), obs.end());
      }
    }
  }
  stats_catalog_.ObserveBatch(view_obs);
  if (have_views) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.view_updates;
  }
  return result;
}

void Engine::AddPair(const std::string& rel, int64_t a, int64_t b) {
  Status st =
      AddFact(ast::Atom(rel, {ast::Term::Int(a), ast::Term::Int(b)}));
  FACTLOG_DCHECK(st.ok() && "AddPair must not race queries");
  (void)st;
}

void Engine::AddUnit(const std::string& rel, int64_t a) {
  Status st = AddFact(ast::Atom(rel, {ast::Term::Int(a)}));
  FACTLOG_DCHECK(st.ok() && "AddUnit must not race queries");
  (void)st;
}

Status Engine::LoadFacts(const std::string& text) {
  FACTLOG_ASSIGN_OR_RETURN(ast::Program facts, ast::ParseProgram(text));
  if (serving_active_.load(std::memory_order_acquire)) {
    for (const ast::Rule& rule : facts.rules()) {
      if (!rule.IsFact()) {
        return Status::Invalid("LoadFacts input contains a non-fact rule: " +
                               rule.ToString());
      }
      FACTLOG_RETURN_IF_ERROR(AddFact(rule.head()));
    }
    return Status::OK();
  }
  FACTLOG_RETURN_IF_ERROR(CheckMutable("LoadFacts"));
  for (const ast::Rule& rule : facts.rules()) {
    if (!rule.IsFact()) {
      return Status::Invalid("LoadFacts input contains a non-fact rule: " +
                             rule.ToString());
    }
    FACTLOG_RETURN_IF_ERROR(AddFactImpl(rule.head()));
  }
  // One WAL epoch for the whole batch: a single fsync makes the load atomic
  // and keeps bulk ingest off the per-fact commit path.
  return CommitStorage();
}

// ---- Compilation ------------------------------------------------------------

std::string Engine::PlanCacheKey(const ast::Program& program,
                                 const ast::Atom& query, Strategy strategy) {
  // Canonicalization makes the key invariant under rule reordering, body
  // reordering, and variable renaming; the query's constants (and hence its
  // adornment) stay, so differently-bound queries get distinct plans.
  ast::Program keyed = program;
  keyed.set_query(query);
  std::string key = StrategyToString(strategy);
  key += '|';
  key += analysis::Adornment::ForQuery(query).pattern();
  key += '|';
  key += core::CanonicalString(keyed);
  return key;
}

core::PipelineOptions Engine::PipelineOptionsForCompile(
    const eval::Database* hint_db) const {
  core::PipelineOptions opts = options_.pipeline;
  // Top-down SLD resolution handles Prolog-style rules with unrestricted
  // head variables, so safety violations only warn under kTopDown.
  if (options_.execution == ExecutionMode::kTopDown) {
    opts.lint.unsafe_as_warning = true;
  }
  // A serving compile seeds the planner from the pinned snapshot: immutable,
  // so no guard is needed and no mutation can race the iteration.
  if (hint_db != nullptr) {
    for (const auto& [name, rel] : hint_db->relations()) {
      opts.planner.extent_hints[name] = rel->size();
      opts.lint.edb_arities.emplace(name, rel->arity());
    }
    stats_catalog_.SeedPlanOptions(&opts.planner);
    return opts;
  }
  // Seed the join planner with the actual base-relation sizes. Reading the
  // database makes this snapshot subject to the same contract as evaluation
  // (mutations must not race it), so it runs under the evaluation-epoch
  // guard: a concurrent AddFact/RemoveFact fails with kFailedPrecondition
  // instead of mutating the relations map mid-iteration. Same best-effort
  // detection level as Execute — see the header's epoch-guard caveat.
  QueryScope scope(this);
  for (const auto& [name, rel] : db_.relations()) {
    opts.planner.extent_hints[name] = rel->size();
    opts.lint.edb_arities.emplace(name, rel->arity());
  }
  // Measured feedback: observed delta means and probe selectivities (plus
  // extents for predicates the live database doesn't know — derived IDB).
  stats_catalog_.SeedPlanOptions(&opts.planner);
  return opts;
}

analysis::LintReport Engine::Lint(const ast::Program& program) const {
  analysis::LintOptions opts = options_.pipeline.lint;
  if (options_.execution == ExecutionMode::kTopDown) {
    opts.unsafe_as_warning = true;
  }
  // The database schema feeds the arity check (L003) and marks the query
  // predicate defined (L106). Same read contract as compilation: mutations
  // must not race.
  for (const auto& [name, rel] : db_.relations()) {
    opts.edb_arities.emplace(name, rel->arity());
  }
  return analysis::LintProgram(program, opts);
}

Result<analysis::LintReport> Engine::Lint(
    const std::string& program_text) const {
  FACTLOG_ASSIGN_OR_RETURN(ast::Program program,
                           ast::ParseProgram(program_text));
  return Lint(program);
}

Result<std::shared_ptr<const CompiledQuery>> Engine::Compile(
    const ast::Program& program, const ast::Atom& query, Strategy strategy,
    QueryStats* stats) {
  if (!options_.enable_plan_cache) {
    const auto start = std::chrono::steady_clock::now();
    FACTLOG_ASSIGN_OR_RETURN(
        CompiledQuery compiled,
        core::CompileQuery(program, query, strategy,
                           PipelineOptionsForCompile()));
    if (stats != nullptr) {
      stats->compile_us = MicrosSince(start);
      stats->lint_warnings = compiled.diagnostics.size();
    }
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.compiles;
    return std::make_shared<const CompiledQuery>(std::move(compiled));
  }
  return CompileWithKey(program, query, strategy, stats,
                        PlanCacheKey(program, query, strategy));
}

Result<std::shared_ptr<const CompiledQuery>> Engine::CompileWithKey(
    const ast::Program& program, const ast::Atom& query, Strategy strategy,
    QueryStats* stats, const std::string& key,
    const eval::Database* hint_db) {
  const auto start = std::chrono::steady_clock::now();
  std::shared_ptr<InFlightCompile> flight;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      // Stale-plan guard: the plan was costed against the extents recorded
      // in planner_hints. If the database has since drifted past the
      // threshold, the cached body orders may be badly wrong — but the
      // transform pipeline's output (the expensive part: classification,
      // the NP-hard containments, magic/factoring) is still valid. Re-plan
      // the join orders in place against current sizes and the statistics
      // catalog instead of recompiling.
      const eval::Database* cost_db = hint_db != nullptr ? hint_db : &db_;
      if (!it->second.plan->planner_hints.empty() &&
          ExtentsDrifted(it->second.plan->planner_hints, *cost_db)) {
        ++stats_.plans_invalidated;
        RecostCacheEntry(&it->second, *cost_db);
        ++stats_.plans_recosted;
      }
      ++stats_.cache_hits;
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      if (stats != nullptr) {
        stats->cache_hit = true;
        stats->lint_warnings = it->second.plan->diagnostics.size();
      }
      return it->second.plan;
    }
    auto [fit, inserted] = inflight_.try_emplace(key);
    if (inserted) {
      fit->second = std::make_shared<InFlightCompile>();
      owner = true;
    }
    flight = fit->second;
  }

  if (!owner) {
    // Another caller is compiling this key; wait for its outcome instead of
    // repeating the (NP-hard) containment checks. Counts as a cache hit.
    std::unique_lock<std::mutex> fl(flight->mu);
    flight->cv.wait(fl, [&] { return flight->done; });
    if (!flight->status.ok()) return flight->status;
    if (stats != nullptr) {
      stats->cache_hit = true;
      stats->lint_warnings = flight->plan->diagnostics.size();
    }
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.cache_hits;
    return flight->plan;
  }

  // Single-flight owner: compile outside every lock — the pipeline is pure
  // and may be slow.
  auto compiled = core::CompileQuery(program, query, strategy,
                                     PipelineOptionsForCompile(hint_db));
  std::shared_ptr<const CompiledQuery> plan;
  if (compiled.ok()) {
    plan = std::make_shared<const CompiledQuery>(std::move(compiled).value());
    if (stats != nullptr) {
      stats->compile_us = MicrosSince(start);
      stats->lint_warnings = plan->diagnostics.size();
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (compiled.ok()) {
      ++stats_.compiles;
      if (options_.plan_cache_capacity > 0) {
        while (cache_.size() >= options_.plan_cache_capacity) {
          cache_.erase(lru_.back());
          lru_.pop_back();
        }
        lru_.push_front(key);
        cache_[key] = CacheEntry{plan, lru_.begin()};
      }
    }
    inflight_.erase(key);
  }
  {
    std::lock_guard<std::mutex> fl(flight->mu);
    flight->done = true;
    flight->status = compiled.ok() ? Status::OK() : compiled.status();
    flight->plan = plan;
  }
  flight->cv.notify_all();
  if (!compiled.ok()) return compiled.status();
  return plan;
}

void Engine::RecostCacheEntry(CacheEntry* entry,
                              const eval::Database& cost_db) {
  // Measured plan options: live base-relation sizes first (they always win),
  // then the catalog's decayed delta means and probe selectivities.
  plan::PlanOptions popts = options_.pipeline.planner;
  for (const auto& [name, rel] : cost_db.relations()) {
    popts.extent_hints[name] = rel->size();
  }
  stats_catalog_.SeedPlanOptions(&popts);

  auto recosted = std::make_shared<CompiledQuery>(*entry->plan);
  recosted->plans = plan::PlanProgram(recosted->program, popts);
  // Refresh planner_hints exactly as FinishCompile records them (extents in
  // effect, restricted to predicates the program mentions) — the drift guard
  // re-arms against the sizes this re-cost saw.
  recosted->planner_hints.clear();
  for (const ast::Rule& rule : recosted->program.rules()) {
    for (const ast::Atom& body : rule.body()) {
      auto hit = popts.extent_hints.find(body.predicate());
      if (hit != popts.extent_hints.end()) {
        recosted->planner_hints[hit->first] = hit->second;
      }
    }
  }
  // The L104 cartesian-join verdict is a property of the plan that executes:
  // recompute it against the re-costed orders.
  std::vector<Diagnostic> diags;
  for (Diagnostic& d : recosted->diagnostics) {
    if (d.code != "L104") diags.push_back(std::move(d));
  }
  for (Diagnostic& d :
       analysis::LintCartesianJoins(recosted->program, recosted->plans)) {
    diags.push_back(std::move(d));
  }
  recosted->diagnostics = std::move(diags);
  entry->plan = std::move(recosted);
}

void Engine::RecordEvalObservations(const eval::EvalStats& es) {
  for (const auto& [pred, rows] : es.observed_extents) {
    stats_catalog_.ObserveExtent(pred, rows);
  }
  for (const auto& [pred, mean] : es.observed_delta_mean) {
    stats_catalog_.ObserveDelta(pred, mean);
  }
  stats_catalog_.ObserveBatch(es.probe_observations);
  if (es.replans > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.replans += es.replans;
  }
}

exec::ThreadPool* Engine::EnsurePool() {
  if (options_.num_threads == 0) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  if (pool_ == nullptr) {
    pool_ = std::make_unique<exec::ThreadPool>(options_.num_threads);
  }
  return pool_.get();
}

// ---- Execution --------------------------------------------------------------

Result<eval::AnswerSet> Engine::Execute(const CompiledQuery& plan,
                                        QueryStats* stats) {
  const auto start = std::chrono::steady_clock::now();
  QueryScope scope(this);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.executions;
  }
  if (stats != nullptr) {
    stats->plan_rules = plan.plans.rules.size();
    stats->plan_reordered = plan.plans.reordered_rules();
  }
  Result<eval::AnswerSet> answers = Status::Internal("unreachable");
  switch (options_.execution) {
    case ExecutionMode::kBottomUp: {
      // Evaluate under the compile-time join plan (`plan` outlives the
      // call). The parallel fixpoint handles semi-naive without provenance;
      // the sequential evaluator stays the oracle for everything else.
      // Evaluation counters are always collected — the measured
      // cardinalities feed the statistics catalog even when the caller
      // didn't ask for stats.
      eval::EvalStats local_eval;
      eval::EvalStats* es = stats != nullptr ? &stats->eval : &local_eval;
      bool parallel = options_.num_threads > 0 &&
                      !options_.eval.track_provenance &&
                      options_.eval.strategy == eval::Strategy::kSemiNaive;
      if (parallel) {
        exec::ParallelEvalOptions popts;
        popts.eval = options_.eval;
        popts.eval.program_plan = &plan.plans;
        popts.num_shards = options_.num_shards;
        answers = exec::EvaluateQueryParallel(plan.program, plan.query, &db_,
                                              EnsurePool(), popts, es);
      } else {
        eval::EvalOptions eopts = options_.eval;
        eopts.program_plan = &plan.plans;
        answers =
            eval::EvaluateQuery(plan.program, plan.query, &db_, eopts, es);
      }
      if (answers.ok()) RecordEvalObservations(*es);
      break;
    }
    case ExecutionMode::kTopDown:
      answers = eval::SolveTopDown(plan.program, plan.query, &db_,
                                   options_.sld,
                                   stats != nullptr ? &stats->sld : nullptr);
      break;
  }
  if (stats != nullptr) stats->execute_us = MicrosSince(start);
  return answers;
}

void Engine::RenameAnswerVars(const ast::Atom& query,
                              eval::AnswerSet* answers) {
  // A cache or view hit executes a plan compiled from a possibly-renamed
  // query. The keys only collide for canonically identical atoms, so the
  // i-th distinct variable of the plan's query is the i-th distinct variable
  // of the caller's: rename positionally.
  std::vector<std::string> vars = query.DistinctVars();
  if (vars.size() == answers->vars.size()) answers->vars = std::move(vars);
}

Result<eval::AnswerSet> Engine::Query(const ast::Program& program,
                                      const ast::Atom& query,
                                      Strategy strategy, QueryStats* stats) {
  if (serving_active_.load(std::memory_order_acquire)) {
    // Inline snapshot read: same execution as a SubmitQuery, minus the
    // queue. Runs concurrently with the writer, no epoch guard involved.
    serve::QueryResponse resp;
    const auto start = std::chrono::steady_clock::now();
    ServingRead(program, query, strategy, &resp);
    if (stats != nullptr) {
      stats->view_hit = resp.view_hit;
      stats->cache_hit = resp.cache_hit;
      stats->execute_us = MicrosSince(start);
    }
    if (!resp.status.ok()) return resp.status;
    return std::move(resp.answers);
  }
  // A materialized view with this plan key answers without executing. The
  // key doubles as the compile key below, so it is derived at most once.
  std::string key;
  inc::MaterializedView* view = nullptr;
  if (options_.enable_plan_cache || num_views() > 0) {
    key = PlanCacheKey(program, query, strategy);
  }
  {
    std::lock_guard<std::mutex> lock(view_mu_);
    if (!views_.empty()) {
      auto it = views_.find(key);
      if (it != views_.end()) view = it->second.get();
    }
  }
  if (view != nullptr) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.view_hits;
    }
    // The view materializes the *transformed* program; answer with its query
    // (as Execute would) and rename the columns to the caller's variables.
    if (!view->program().query().has_value()) {
      return Status::Internal("materialized view's plan carries no query");
    }
    if (stats != nullptr) stats->view_hit = true;
    QueryScope scope(this);
    eval::AnswerSet answers;
    {
      std::lock_guard<std::mutex> lock(view_mu_);
      FACTLOG_ASSIGN_OR_RETURN(answers,
                               view->Answer(*view->program().query()));
    }
    RenameAnswerVars(query, &answers);
    return answers;
  }

  FACTLOG_ASSIGN_OR_RETURN(
      std::shared_ptr<const CompiledQuery> plan,
      options_.enable_plan_cache
          ? CompileWithKey(program, query, strategy, stats, key)
          : Compile(program, query, strategy, stats));
  FACTLOG_ASSIGN_OR_RETURN(eval::AnswerSet answers, Execute(*plan, stats));
  RenameAnswerVars(query, &answers);
  return answers;
}

Result<eval::AnswerSet> Engine::Query(const std::string& program_text,
                                      Strategy strategy, QueryStats* stats) {
  FACTLOG_ASSIGN_OR_RETURN(ast::Program program,
                           ast::ParseProgram(program_text));
  if (!program.query().has_value()) {
    return Status::Invalid("program text has no '?-' query");
  }
  ast::Atom query = *program.query();
  return Query(program, query, strategy, stats);
}

// ---- Materialized views -----------------------------------------------------

inc::IncrementalOptions Engine::MakeIncOptions() {
  inc::IncrementalOptions iopts;
  iopts.eval = options_.eval;
  iopts.eval.track_provenance = false;  // views do not maintain provenance
  iopts.pool = EnsurePool();
  iopts.min_rows_to_partition = options_.inc_min_rows_to_partition;
  iopts.max_derivation_edges = options_.inc_max_derivation_edges;
  return iopts;
}

Result<ViewHandle> Engine::Materialize(const ast::Program& program,
                                       const ast::Atom& query,
                                       Strategy strategy, QueryStats* stats) {
  if (serving_active_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition(
        "Materialize while serving; materialize views before StartServing");
  }
  const std::string key = PlanCacheKey(program, query, strategy);
  FACTLOG_ASSIGN_OR_RETURN(
      std::shared_ptr<const CompiledQuery> plan,
      options_.enable_plan_cache
          ? CompileWithKey(program, query, strategy, stats, key)
          : Compile(program, query, strategy, stats));
  {
    std::lock_guard<std::mutex> lock(view_mu_);
    if (views_.count(key) > 0) return ViewHandle{key};
  }
  std::unique_ptr<inc::MaterializedView> view;
  {
    // The initial evaluation is a query for the epoch guard's purposes.
    QueryScope scope(this);
    const auto start = std::chrono::steady_clock::now();
    inc::IncrementalOptions iopts = MakeIncOptions();
    // The view copies the plan during Build and drops the pointer after.
    iopts.eval.program_plan = &plan->plans;
    FACTLOG_ASSIGN_OR_RETURN(
        view, inc::MaterializedView::Build(plan->program, &db_, iopts));
    stats_catalog_.ObserveBatch(view->DrainObservations());
    if (stats != nullptr) stats->execute_us = MicrosSince(start);
  }
  std::lock_guard<std::mutex> lock(view_mu_);
  views_.emplace(key, std::move(view));
  return ViewHandle{key};
}

Result<ViewHandle> Engine::Materialize(const std::string& program_text,
                                       Strategy strategy) {
  FACTLOG_ASSIGN_OR_RETURN(ast::Program program,
                           ast::ParseProgram(program_text));
  if (!program.query().has_value()) {
    return Status::Invalid("program text has no '?-' query");
  }
  ast::Atom query = *program.query();
  return Materialize(program, query, strategy);
}

inc::MaterializedView* Engine::FindView(const std::string& key) {
  std::lock_guard<std::mutex> lock(view_mu_);
  auto it = views_.find(key);
  return it == views_.end() ? nullptr : it->second.get();
}

Result<eval::AnswerSet> Engine::AnswerFromView(const ViewHandle& handle) {
  inc::MaterializedView* view = FindView(handle.key);
  if (view == nullptr) {
    return Status::NotFound("no materialized view for handle");
  }
  if (!view->program().query().has_value()) {
    return Status::Internal("materialized view's plan carries no query");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.view_hits;
  }
  QueryScope scope(this);
  std::lock_guard<std::mutex> lock(view_mu_);
  return view->Answer(*view->program().query());
}

const inc::MaterializedView* Engine::view(const ViewHandle& handle) const {
  std::lock_guard<std::mutex> lock(view_mu_);
  auto it = views_.find(handle.key);
  return it == views_.end() ? nullptr : it->second.get();
}

Result<inc::ViewStats> Engine::ViewStatsFor(const ViewHandle& handle) const {
  std::lock_guard<std::mutex> lock(view_mu_);
  auto it = views_.find(handle.key);
  if (it == views_.end()) {
    return Status::NotFound("no materialized view for handle");
  }
  return it->second->stats();
}

Result<std::string> Engine::ExplainFromView(const ViewHandle& handle,
                                            const ast::Atom& fact) {
  // Explain interns the fact's constants (thread-safe store) and reads the
  // maintained state; serialize against propagation like every view access.
  std::lock_guard<std::mutex> lock(view_mu_);
  auto it = views_.find(handle.key);
  if (it == views_.end()) {
    return Status::NotFound("no materialized view for handle");
  }
  return it->second->Explain(fact);
}

void Engine::DropView(const ViewHandle& handle) {
  // While serving, the writer thread reads views at every install; dropping
  // one from another thread would race it. Refuse (views are engine-lifetime
  // fixtures in serving mode).
  if (serving_active_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(view_mu_);
  views_.erase(handle.key);
}

size_t Engine::num_views() const {
  std::lock_guard<std::mutex> lock(view_mu_);
  return views_.size();
}

// ---- Batch ------------------------------------------------------------------

Result<exec::BatchResult> Engine::ExecuteBatch(
    const std::vector<BatchQuery>& batch) {
  if (options_.execution != ExecutionMode::kBottomUp) {
    return Status::Invalid(
        "ExecuteBatch requires bottom-up execution (top-down resolution is "
        "not thread-safe against a shared database)");
  }
  if (serving_active_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition(
        "ExecuteBatch while serving; use SubmitQuery (the serving queue "
        "already multiplexes the pool) or StopServing first");
  }
  QueryScope scope(this);
  exec::BatchCompileFn compile =
      [this, &batch](size_t i, exec::ExecStats* stats)
      -> Result<std::shared_ptr<const CompiledQuery>> {
    QueryStats qs;
    auto plan =
        Compile(batch[i].program, batch[i].query, batch[i].strategy, &qs);
    stats->cache_hit = qs.cache_hit;
    stats->compile_us = qs.compile_us;
    return plan;
  };
  FACTLOG_ASSIGN_OR_RETURN(
      exec::BatchResult result,
      exec::RunBatch(EnsurePool(), &db_, batch.size(), compile,
                     options_.eval));
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.batches;
    stats_.executions += result.summary.succeeded + result.summary.failed;
  }
  return result;
}

Result<exec::BatchResult> Engine::ExecuteBatch(
    const std::vector<std::string>& program_texts, Strategy strategy) {
  // Parse failures are per-query outcomes, not batch failures: valid texts
  // still execute, and the invalid ones report their status index-aligned.
  std::vector<BatchQuery> batch;
  std::vector<size_t> batch_to_original;
  std::vector<Status> parse_errors(program_texts.size(), Status::OK());
  for (size_t i = 0; i < program_texts.size(); ++i) {
    auto program = ast::ParseProgram(program_texts[i]);
    if (!program.ok()) {
      parse_errors[i] = program.status();
      continue;
    }
    if (!program->query().has_value()) {
      parse_errors[i] =
          Status::Invalid("batch program text has no '?-' query: " +
                          program_texts[i]);
      continue;
    }
    BatchQuery q;
    q.query = *program->query();
    q.program = std::move(program).value();
    q.strategy = strategy;
    batch.push_back(std::move(q));
    batch_to_original.push_back(i);
  }

  FACTLOG_ASSIGN_OR_RETURN(exec::BatchResult ran, ExecuteBatch(batch));
  if (batch.size() == program_texts.size()) return ran;

  // Scatter the executed results back to their original positions.
  exec::BatchResult result;
  result.answers.resize(program_texts.size());
  result.stats.resize(program_texts.size());
  result.summary = ran.summary;
  result.summary.queries = program_texts.size();
  for (size_t b = 0; b < batch.size(); ++b) {
    result.answers[batch_to_original[b]] = std::move(ran.answers[b]);
    result.stats[batch_to_original[b]] = std::move(ran.stats[b]);
  }
  for (size_t i = 0; i < program_texts.size(); ++i) {
    if (!parse_errors[i].ok()) {
      result.stats[i].status = parse_errors[i];
      ++result.summary.failed;
    }
  }
  return result;
}

// ---- Async serving ----------------------------------------------------------

Engine::~Engine() { StopServing(); }

Status Engine::StartServing(const serve::ServeOptions& serve_options) {
  if (options_.execution != ExecutionMode::kBottomUp) {
    return Status::FailedPrecondition(
        "serving requires bottom-up execution");
  }
  exec::ThreadPool* pool = EnsurePool();
  if (pool == nullptr) {
    return Status::FailedPrecondition(
        "serving requires num_threads > 0 (the request queue runs on the "
        "engine's pool)");
  }
  if (server_ != nullptr) return Status::OK();  // already serving
  serving_ = std::make_unique<ServingState>();
  // Epoch 1: the pre-serving state. Installed before the server exists, so
  // the first reader always finds a snapshot.
  InstallServingSnapshot();
  serve::Server::Hooks hooks;
  hooks.read = [this](const ast::Program& program, const ast::Atom& query,
                      Strategy strategy, serve::QueryResponse* resp) {
    ServingRead(program, query, strategy, resp);
  };
  hooks.apply = [this](bool insert, const ast::Atom& fact) {
    return insert ? AddFactImpl(fact) : RemoveFactImpl(fact);
  };
  hooks.install = [this] {
    uint64_t epoch = InstallServingSnapshot();
    // One WAL commit per installed epoch: the whole drained update batch
    // becomes durable together (the shard seam's batching unit).
    Status st = CommitStorage();
    if (!st.ok()) {
      std::fprintf(stderr, "factlog: WAL commit at serving epoch %llu: %s\n",
                   static_cast<unsigned long long>(epoch),
                   st.ToString().c_str());
    }
    return epoch;
  };
  server_ =
      std::make_unique<serve::Server>(pool, std::move(hooks), serve_options);
  engine_session_ = server_->OpenSession();
  serving_active_.store(true, std::memory_order_release);
  return Status::OK();
}

Status Engine::StopServing() {
  if (server_ == nullptr) return Status::OK();
  // Stop before flipping the flag: late synchronous mutations still route to
  // the (now rejecting) server instead of racing the writer's final batches.
  server_->Stop();
  serving_active_.store(false, std::memory_order_release);
  server_.reset();
  serving_.reset();
  engine_session_ = 0;
  return Status::OK();
}

uint64_t Engine::OpenSession() {
  return server_ == nullptr ? 0 : server_->OpenSession();
}

Status Engine::CloseSession(uint64_t session) {
  if (server_ == nullptr) {
    return Status::FailedPrecondition("engine is not serving");
  }
  return server_->CloseSession(session);
}

Status Engine::SubmitQuery(uint64_t session, ast::Program program,
                           ast::Atom query, Strategy strategy,
                           serve::QueryCallback done) {
  if (server_ == nullptr) {
    return Status::FailedPrecondition("engine is not serving");
  }
  return server_->SubmitQuery(session, std::move(program), std::move(query),
                              strategy, std::move(done));
}

std::future<serve::QueryResponse> Engine::SubmitQuery(uint64_t session,
                                                      ast::Program program,
                                                      ast::Atom query,
                                                      Strategy strategy) {
  if (server_ == nullptr) {
    std::promise<serve::QueryResponse> promise;
    serve::QueryResponse resp;
    resp.status = Status::FailedPrecondition("engine is not serving");
    promise.set_value(std::move(resp));
    return promise.get_future();
  }
  return server_->SubmitQuery(session, std::move(program), std::move(query),
                              strategy);
}

Status Engine::SubmitUpdate(uint64_t session, bool insert, ast::Atom fact,
                            serve::UpdateCallback done) {
  if (server_ == nullptr) {
    return Status::FailedPrecondition("engine is not serving");
  }
  return server_->SubmitUpdate(session, insert, std::move(fact),
                               std::move(done));
}

std::future<serve::UpdateResponse> Engine::SubmitUpdate(uint64_t session,
                                                        bool insert,
                                                        ast::Atom fact) {
  if (server_ == nullptr) {
    std::promise<serve::UpdateResponse> promise;
    serve::UpdateResponse resp;
    resp.status = Status::FailedPrecondition("engine is not serving");
    promise.set_value(std::move(resp));
    return promise.get_future();
  }
  return server_->SubmitUpdate(session, insert, std::move(fact));
}

serve::ServerStats Engine::serving_stats() const {
  return server_ == nullptr ? serve::ServerStats{} : server_->stats();
}

uint64_t Engine::serving_epoch() const {
  return serving_ == nullptr ? 0 : serving_->snapshots.current_epoch();
}

uint64_t Engine::InstallServingSnapshot() {
  // Adaptive indexing: build the access paths serving plans asked for on the
  // *live* relations — snapshots are immutable, so readers can't. The frozen
  // copies taken below inherit them; the requesting query's epoch scanned,
  // the next one probes.
  for (const auto& [name, cols_set] : serving_->vocab.Drain()) {
    eval::Relation* rel = db_.Find(name);
    if (rel == nullptr) continue;
    for (const std::vector<int>& cols : cols_set) rel->EnsureIndex(cols);
  }
  std::shared_ptr<serve::Snapshot> snap = serving_->builder.Build(&db_);
  {
    // Freeze every view's answer relation into the epoch. FrozenAnswer runs
    // on the installing thread — the single writer — as Apply* does.
    std::lock_guard<std::mutex> lock(view_mu_);
    for (auto& [key, view] : views_) {
      if (!view->program().query().has_value()) continue;
      std::shared_ptr<eval::Relation> rel = view->FrozenAnswer();
      if (rel == nullptr) continue;  // poisoned: readers fall back to eval
      snap->views.emplace(
          key, serve::ViewSnapshot{*view->program().query(), std::move(rel)});
    }
  }
  uint64_t epoch = snap->epoch;
  serving_->snapshots.Install(std::move(snap));
  return epoch;
}

void Engine::ServingRead(const ast::Program& program, const ast::Atom& query,
                         Strategy strategy, serve::QueryResponse* resp) {
  std::shared_ptr<const serve::Snapshot> snap = serving_->snapshots.Pin();
  if (snap == nullptr || snap->db == nullptr) {
    resp->status = Status::Internal("no serving snapshot installed");
    return;
  }
  resp->epoch = snap->epoch;
  const std::string key = PlanCacheKey(program, query, strategy);

  // A frozen materialized view answers without executing, exactly like the
  // synchronous view-hit path — but from the epoch's frozen copy, so the
  // writer's concurrent maintenance never shows through.
  auto vit = snap->views.find(key);
  if (vit != snap->views.end()) {
    resp->view_hit = true;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.view_hits;
    }
    Result<eval::AnswerSet> answers = eval::ExtractAnswersFrom(
        vit->second.query, vit->second.rel.get(), &snap->db->store(),
        /*shared=*/true);
    if (!answers.ok()) {
      resp->status = answers.status();
      return;
    }
    resp->answers = std::move(answers).value();
    RenameAnswerVars(query, &resp->answers);
    return;
  }

  // Compile (planner hints from the snapshot — no live-database read, no
  // epoch guard) and evaluate sequentially against the snapshot. The
  // parallel fixpoint is wrong here: serving already runs many queries
  // concurrently, one worker per query.
  QueryStats qs;
  Result<std::shared_ptr<const CompiledQuery>> plan =
      CompileWithKey(program, query, strategy, &qs, key, snap->db.get());
  if (!plan.ok()) {
    resp->status = plan.status();
    return;
  }
  resp->cache_hit = qs.cache_hit;
  // Register the plan's probe columns; the writer builds them at the next
  // install (adaptive indexing — see serve::IndexVocabulary).
  serving_->vocab.RegisterFromPlan(**plan);
  eval::EvalOptions eopts = options_.eval;
  eopts.program_plan = &(*plan)->plans;
  eopts.shared_edb = true;          // snapshot relations are shared-immutable
  eopts.track_provenance = false;   // provenance needs private relations
  eval::EvalStats es;
  Result<eval::AnswerSet> answers = eval::EvaluateQuery(
      (*plan)->program, (*plan)->query, snap->db.get(), eopts, &es);
  if (answers.ok()) RecordEvalObservations(es);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.executions;
  }
  if (!answers.ok()) {
    resp->status = answers.status();
    return;
  }
  resp->answers = std::move(answers).value();
  RenameAnswerVars(query, &resp->answers);
}

// ---- Persistence ------------------------------------------------------------

Result<std::unique_ptr<Engine>> Engine::Open(const std::string& path,
                                             EngineOptions options) {
  options.db_path = path;
  auto engine = std::make_unique<Engine>(std::move(options));
  FACTLOG_RETURN_IF_ERROR(engine->InitStorage());
  return engine;
}

Status Engine::InitStorage() {
  storage::StorageManager::Options sopts;
  sopts.dir = options_.db_path;
  sopts.frame_budget = options_.storage_frame_budget;
  FACTLOG_ASSIGN_OR_RETURN(storage_, storage::StorageManager::Open(sopts));
  db_.AttachTableSpace(storage_->tablespace());
  storage_epoch_ = storage_->last_committed_epoch();
  replaying_ = true;
  Status st = RestoreFromCheckpoint();
  if (st.ok()) st = ReplayWal();
  replaying_ = false;
  FACTLOG_RETURN_IF_ERROR(st);
  storage_->DiscardRecoveryState();
  return Status::OK();
}

Status Engine::RestoreFromCheckpoint() {
  if (!storage_->has_checkpoint()) return Status::OK();
  const storage::CheckpointMeta& meta = storage_->recovered_meta();
  storage_epoch_ = std::max(storage_epoch_, meta.epoch);

  // Values first: re-interning dump entries in id order reproduces the exact
  // id assignment (children of a compound always have smaller ids), which
  // every persisted row and view depends on.
  eval::ValueStore& store = db_.store();
  for (const storage::ValueDumpEntry& v : meta.values) {
    switch (v.kind) {
      case 0:
        store.InternInt(v.int_value);
        break;
      case 1:
        store.InternSym(v.symbol);
        break;
      default: {
        std::vector<eval::ValueId> kids(v.children.begin(), v.children.end());
        store.InternApp(v.symbol, std::move(kids));
        break;
      }
    }
  }
  if (store.size() != meta.values.size()) {
    return Status::Internal(
        "value store restore drifted: checkpoint holds duplicate entries");
  }

  // Base relations: paged shards adopt their checkpointed chains (no row
  // I/O beyond the dedup-rebuild scan); unpageable shards reload inline rows.
  for (const storage::RelationDump& rd : meta.relations) {
    eval::StorageOptions so;
    so.num_shards = rd.num_shards;
    so.partition_cols.assign(rd.part_cols.begin(), rd.part_cols.end());
    auto rel = std::make_shared<eval::Relation>(rd.arity, so);
    if (rd.shards.size() != rel->shard_count()) {
      return Status::Internal("relation '" + rd.name +
                              "': checkpoint shard count mismatch");
    }
    const bool pageable =
        rd.arity > 0 && storage::PagedRowStore::RowFits(
                            rd.arity * sizeof(eval::ValueId));
    if (pageable) {
      std::vector<std::vector<storage::PageId>> chains;
      std::vector<uint64_t> rows;
      chains.reserve(rd.shards.size());
      rows.reserve(rd.shards.size());
      for (const storage::ShardDump& sh : rd.shards) {
        chains.push_back(sh.chain);
        rows.push_back(sh.num_rows);
      }
      FACTLOG_RETURN_IF_ERROR(
          rel->AdoptPagedChains(storage_->tablespace(), chains, rows));
    } else {
      for (const storage::ShardDump& sh : rd.shards) {
        if (rd.arity == 0) {
          if (sh.num_rows > 0) rel->Insert(std::vector<eval::ValueId>{});
          continue;
        }
        for (uint64_t r = 0; r < sh.num_rows; ++r) {
          rel->Insert(sh.inline_rows.data() + r * rd.arity);
        }
      }
    }
    db_.PutRelation(rd.name, std::move(rel));
  }

  // Materialized views: recompile the maintenance machinery, fill the
  // maintained relations (and exact support counts) from the dump — no
  // from-scratch evaluation.
  for (const storage::ViewDumpRec& vd : meta.views) {
    FACTLOG_ASSIGN_OR_RETURN(ast::Program vprog,
                             ast::ParseProgram(vd.program_text));
    if (!vprog.query().has_value() && !vd.query_text.empty()) {
      FACTLOG_ASSIGN_OR_RETURN(
          ast::Program qprog, ast::ParseProgram("?- " + vd.query_text + "."));
      if (qprog.query().has_value()) vprog.set_query(*qprog.query());
    }
    std::vector<inc::ViewPredState> preds;
    preds.reserve(vd.preds.size());
    for (const storage::ViewPredDump& pd : vd.preds) {
      inc::ViewPredState ps;
      ps.pred = pd.pred;
      ps.arity = pd.arity;
      ps.counts_enabled = pd.counts_enabled != 0;
      ps.num_rows = pd.num_rows;
      ps.rows.assign(pd.rows.begin(), pd.rows.end());
      ps.row_counts = pd.row_counts;
      preds.push_back(std::move(ps));
    }
    FACTLOG_ASSIGN_OR_RETURN(
        std::unique_ptr<inc::MaterializedView> view,
        inc::MaterializedView::Restore(vprog, &db_, MakeIncOptions(), preds));
    {
      std::lock_guard<std::mutex> lock(view_mu_);
      views_.emplace(vd.key, std::move(view));
    }
    ++views_restored_;
  }

  // Statistics catalog, before the plan warm-recompiles: restored plans are
  // costed from the measured cardinalities the previous incarnation learned.
  if (!meta.stats.empty()) {
    std::map<std::string, plan::PredicateStats> entries;
    for (const storage::PredicateStatsDump& sd : meta.stats) {
      plan::PredicateStats ps;
      ps.extent = sd.extent;
      ps.extent_runs = sd.extent_runs;
      ps.delta_mean = sd.delta_mean;
      ps.delta_runs = sd.delta_runs;
      for (const storage::ProbeStatDump& pb : sd.probes) {
        plan::ProbeStats st;
        st.probes = pb.probes;
        st.matched = pb.matched;
        st.runs = pb.runs;
        ps.probes[pb.pattern] = st;
      }
      entries[sd.pred] = std::move(ps);
    }
    stats_catalog_.Restore(std::move(entries));
  }

  // Cached plans: drop entries whose costed extents drifted past the
  // threshold (they recompile lazily against fresh sizes on next use);
  // warm-recompile the rest under their original cache keys.
  for (const storage::PlanDescriptor& pd : meta.plans) {
    if (ExtentsDrifted(pd.extent_hints, db_)) {
      ++plans_dropped_stale_;
      continue;
    }
    std::optional<Strategy> strat = core::StrategyFromString(pd.strategy);
    Result<ast::Program> prog = ast::ParseProgram(pd.program_text);
    Result<ast::Program> qprog =
        ast::ParseProgram("?- " + pd.query_text + ".");
    if (!strat.has_value() || !prog.ok() || !qprog.ok() ||
        !qprog->query().has_value()) {
      ++plans_dropped_stale_;
      continue;
    }
    Result<std::shared_ptr<const CompiledQuery>> plan = CompileWithKey(
        *prog, *qprog->query(), *strat, nullptr, pd.cache_key);
    if (plan.ok()) {
      ++plans_restored_;
    } else {
      ++plans_dropped_stale_;
    }
  }
  return Status::OK();
}

Status Engine::ReplayWal() {
  for (const storage::WalRecord& rec : storage_->recovered_records()) {
    switch (rec.type) {
      case storage::WalRecordType::kAddFact:
      case storage::WalRecordType::kRemoveFact: {
        ast::Atom fact;
        if (!storage::DecodeFactRecord(rec.payload.data(),
                                       rec.payload.size(), &fact)) {
          return Status::Internal("WAL replay: malformed fact record");
        }
        const bool insert = rec.type == storage::WalRecordType::kAddFact;
        FACTLOG_RETURN_IF_ERROR(insert ? AddFactImpl(fact)
                                       : RemoveFactImpl(fact));
        ++facts_replayed_;
        break;
      }
      case storage::WalRecordType::kCommit: {
        uint64_t epoch = 0;
        if (!storage::DecodeCommitRecord(rec.payload.data(),
                                         rec.payload.size(), &epoch)) {
          return Status::Internal("WAL replay: malformed commit record");
        }
        storage_epoch_ = std::max(storage_epoch_, epoch);
        break;
      }
    }
  }
  return Status::OK();
}

Status Engine::CommitStorage() {
  if (storage_ == nullptr || replaying_) return Status::OK();
  if (storage_->pending_records() == 0) return Status::OK();
  return storage_->CommitEpoch(++storage_epoch_);
}

Status Engine::Checkpoint() {
  if (storage_ == nullptr) {
    return Status::FailedPrecondition(
        "Checkpoint on an in-memory engine; open one with Engine::Open");
  }
  if (serving_active_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition(
        "Checkpoint while serving; StopServing first (the writer owns the "
        "relations)");
  }
  FACTLOG_RETURN_IF_ERROR(CheckMutable("Checkpoint"));

  storage::CheckpointMeta meta;
  meta.epoch = storage_epoch_;

  // Values, in id order.
  const eval::ValueStore& store = db_.store();
  meta.values.reserve(store.size());
  for (size_t i = 0; i < store.size(); ++i) {
    const auto id = static_cast<eval::ValueId>(i);
    storage::ValueDumpEntry v;
    switch (store.kind(id)) {
      case eval::ValueStore::Kind::kInt:
        v.kind = 0;
        v.int_value = store.int_value(id);
        break;
      case eval::ValueStore::Kind::kSymbol:
        v.kind = 1;
        v.symbol = store.symbol(id);
        break;
      case eval::ValueStore::Kind::kCompound:
        v.kind = 2;
        v.symbol = store.symbol(id);
        v.children.reserve(store.NumChildren(id));
        for (size_t c = 0; c < store.NumChildren(id); ++c) {
          v.children.push_back(store.Child(id, c));
        }
        break;
    }
    meta.values.push_back(std::move(v));
  }

  // Base relations: page everything pageable (idempotent for already-paged
  // shards), then record each shard's chain — or its rows inline when the
  // shard cannot live on pages.
  for (const auto& [name, rel] : db_.relations()) {
    rel->SyncShards();
    rel->AttachPagedStore(db_.tablespace());
    storage::RelationDump rd;
    rd.name = name;
    rd.arity = static_cast<uint32_t>(rel->arity());
    rd.num_shards = static_cast<uint32_t>(rel->shard_count());
    rd.part_cols.assign(rel->partition_cols().begin(),
                        rel->partition_cols().end());
    std::vector<std::vector<storage::PageId>> chains;
    std::vector<uint64_t> rows;
    rel->DumpPagedChains(&chains, &rows);
    rd.shards.reserve(chains.size());
    for (size_t s = 0; s < chains.size(); ++s) {
      storage::ShardDump sd;
      sd.num_rows = rows[s];
      sd.chain = std::move(chains[s]);
      if (sd.chain.empty() && rel->arity() > 0 && rows[s] > 0) {
        const eval::Relation& sh = rel->shard(s);
        sd.inline_rows.reserve(sh.size() * rel->arity());
        for (size_t r = 0; r < sh.size(); ++r) {
          const eval::ValueId* rp = sh.row(r);
          sd.inline_rows.insert(sd.inline_rows.end(), rp, rp + rel->arity());
        }
      }
      rd.shards.push_back(std::move(sd));
    }
    meta.relations.push_back(std::move(rd));
  }

  // Materialized views, by value (poisoned views are dropped: their state is
  // not worth persisting).
  {
    std::lock_guard<std::mutex> lock(view_mu_);
    for (auto& [key, view] : views_) {
      if (view->poisoned()) continue;
      storage::ViewDumpRec vd;
      vd.key = key;
      vd.program_text = view->program().ToString();
      if (view->program().query().has_value()) {
        vd.query_text = view->program().query()->ToString();
      }
      vd.strategy = key.substr(0, key.find('|'));
      for (inc::ViewPredState& ps : view->DumpState()) {
        storage::ViewPredDump pd;
        pd.pred = std::move(ps.pred);
        pd.arity = ps.arity;
        pd.counts_enabled = ps.counts_enabled ? 1 : 0;
        pd.num_rows = ps.num_rows;
        pd.rows.assign(ps.rows.begin(), ps.rows.end());
        pd.row_counts = std::move(ps.row_counts);
        vd.preds.push_back(std::move(pd));
      }
      meta.views.push_back(std::move(vd));
    }
  }

  // Cached plans: source texts plus the extents they were costed against
  // (the stale-plan guard's baseline on the next Open).
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [key, entry] : cache_) {
      storage::PlanDescriptor pd;
      pd.cache_key = key;
      pd.strategy = key.substr(0, key.find('|'));
      pd.program_text = entry.plan->source.ToString();
      pd.query_text = entry.plan->source_query.ToString();
      pd.extent_hints = entry.plan->planner_hints;
      meta.plans.push_back(std::move(pd));
    }
  }

  // Statistics catalog: the decayed measured cardinalities, so a reopened
  // engine plans from observations instead of re-learning them.
  for (const auto& [pred, ps] : stats_catalog_.Snapshot()) {
    storage::PredicateStatsDump sd;
    sd.pred = pred;
    sd.extent = ps.extent;
    sd.extent_runs = ps.extent_runs;
    sd.delta_mean = ps.delta_mean;
    sd.delta_runs = ps.delta_runs;
    for (const auto& [pattern, st] : ps.probes) {
      storage::ProbeStatDump pb;
      pb.pattern = pattern;
      pb.probes = st.probes;
      pb.matched = st.matched;
      pb.runs = st.runs;
      sd.probes.push_back(std::move(pb));
    }
    meta.stats.push_back(std::move(sd));
  }

  FACTLOG_RETURN_IF_ERROR(storage_->Checkpoint(std::move(meta)));
  // The meta file now references these pages: seal them so the next write
  // relocates copy-on-write instead of dirtying checkpointed state.
  for (const auto& [name, rel] : db_.relations()) rel->SealPages();
  return Status::OK();
}

PersistenceStats Engine::persistence_stats() const {
  PersistenceStats ps;
  if (storage_ != nullptr) ps.storage = storage_->stats();
  ps.facts_replayed = facts_replayed_;
  ps.views_restored = views_restored_;
  ps.plans_restored = plans_restored_;
  ps.plans_dropped_stale = plans_dropped_stale_;
  return ps;
}

// ---- Introspection ----------------------------------------------------------

EngineStats Engine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t Engine::plan_cache_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

void Engine::ClearPlanCache() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.clear();
  lru_.clear();
}

}  // namespace factlog::api
