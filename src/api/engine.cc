#include "api/engine.h"

#include <chrono>
#include <utility>

#include "ast/parser.h"
#include "core/canonical.h"

namespace factlog::api {

namespace {

int64_t MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

Status Engine::LoadFacts(const std::string& text) {
  FACTLOG_ASSIGN_OR_RETURN(ast::Program facts, ast::ParseProgram(text));
  for (const ast::Rule& rule : facts.rules()) {
    if (!rule.IsFact()) {
      return Status::Invalid("LoadFacts input contains a non-fact rule: " +
                             rule.ToString());
    }
    FACTLOG_RETURN_IF_ERROR(db_.AddFact(rule.head()));
  }
  return Status::OK();
}

std::string Engine::PlanCacheKey(const ast::Program& program,
                                 const ast::Atom& query, Strategy strategy) {
  // Canonicalization makes the key invariant under rule reordering, body
  // reordering, and variable renaming; the query's constants (and hence its
  // adornment) stay, so differently-bound queries get distinct plans.
  ast::Program keyed = program;
  keyed.set_query(query);
  std::string key = StrategyToString(strategy);
  key += '|';
  key += analysis::Adornment::ForQuery(query).pattern();
  key += '|';
  key += core::CanonicalString(keyed);
  return key;
}

Result<std::shared_ptr<const CompiledQuery>> Engine::Compile(
    const ast::Program& program, const ast::Atom& query, Strategy strategy,
    QueryStats* stats) {
  const auto start = std::chrono::steady_clock::now();
  std::string key;
  if (options_.enable_plan_cache) {
    key = PlanCacheKey(program, query, strategy);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++stats_.cache_hits;
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      if (stats != nullptr) stats->cache_hit = true;
      return it->second.plan;
    }
  }

  FACTLOG_ASSIGN_OR_RETURN(
      CompiledQuery compiled,
      core::CompileQuery(program, query, strategy, options_.pipeline));
  ++stats_.compiles;
  auto plan = std::make_shared<const CompiledQuery>(std::move(compiled));
  if (stats != nullptr) stats->compile_us = MicrosSince(start);

  if (options_.enable_plan_cache && options_.plan_cache_capacity > 0) {
    while (cache_.size() >= options_.plan_cache_capacity) {
      cache_.erase(lru_.back());
      lru_.pop_back();
    }
    lru_.push_front(key);
    cache_[key] = CacheEntry{plan, lru_.begin()};
  }
  return plan;
}

Result<eval::AnswerSet> Engine::Execute(const CompiledQuery& plan,
                                        QueryStats* stats) {
  const auto start = std::chrono::steady_clock::now();
  ++stats_.executions;
  Result<eval::AnswerSet> answers = Status::Internal("unreachable");
  switch (options_.execution) {
    case ExecutionMode::kBottomUp:
      answers = eval::EvaluateQuery(plan.program, plan.query, &db_,
                                    options_.eval,
                                    stats != nullptr ? &stats->eval : nullptr);
      break;
    case ExecutionMode::kTopDown:
      answers = eval::SolveTopDown(plan.program, plan.query, &db_,
                                   options_.sld,
                                   stats != nullptr ? &stats->sld : nullptr);
      break;
  }
  if (stats != nullptr) stats->execute_us = MicrosSince(start);
  return answers;
}

Result<eval::AnswerSet> Engine::Query(const ast::Program& program,
                                      const ast::Atom& query,
                                      Strategy strategy, QueryStats* stats) {
  FACTLOG_ASSIGN_OR_RETURN(std::shared_ptr<const CompiledQuery> plan,
                           Compile(program, query, strategy, stats));
  return Execute(*plan, stats);
}

Result<eval::AnswerSet> Engine::Query(const std::string& program_text,
                                      Strategy strategy, QueryStats* stats) {
  FACTLOG_ASSIGN_OR_RETURN(ast::Program program,
                           ast::ParseProgram(program_text));
  if (!program.query().has_value()) {
    return Status::Invalid("program text has no '?-' query");
  }
  ast::Atom query = *program.query();
  return Query(program, query, strategy, stats);
}

void Engine::ClearPlanCache() {
  cache_.clear();
  lru_.clear();
}

}  // namespace factlog::api
