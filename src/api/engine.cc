#include "api/engine.h"

#include <chrono>
#include <utility>

#include "ast/parser.h"
#include "core/canonical.h"
#include "exec/parallel_seminaive.h"

namespace factlog::api {

namespace {

int64_t MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

Status Engine::LoadFacts(const std::string& text) {
  FACTLOG_ASSIGN_OR_RETURN(ast::Program facts, ast::ParseProgram(text));
  for (const ast::Rule& rule : facts.rules()) {
    if (!rule.IsFact()) {
      return Status::Invalid("LoadFacts input contains a non-fact rule: " +
                             rule.ToString());
    }
    FACTLOG_RETURN_IF_ERROR(db_.AddFact(rule.head()));
  }
  return Status::OK();
}

std::string Engine::PlanCacheKey(const ast::Program& program,
                                 const ast::Atom& query, Strategy strategy) {
  // Canonicalization makes the key invariant under rule reordering, body
  // reordering, and variable renaming; the query's constants (and hence its
  // adornment) stay, so differently-bound queries get distinct plans.
  ast::Program keyed = program;
  keyed.set_query(query);
  std::string key = StrategyToString(strategy);
  key += '|';
  key += analysis::Adornment::ForQuery(query).pattern();
  key += '|';
  key += core::CanonicalString(keyed);
  return key;
}

Result<std::shared_ptr<const CompiledQuery>> Engine::Compile(
    const ast::Program& program, const ast::Atom& query, Strategy strategy,
    QueryStats* stats) {
  const auto start = std::chrono::steady_clock::now();
  std::string key;
  if (options_.enable_plan_cache) {
    key = PlanCacheKey(program, query, strategy);
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++stats_.cache_hits;
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      if (stats != nullptr) stats->cache_hit = true;
      return it->second.plan;
    }
  }

  // Compile outside the lock: the pipeline is pure and may be slow (the
  // factorability containment checks are NP-hard). Concurrent misses on the
  // same key compile twice; the later insert wins.
  FACTLOG_ASSIGN_OR_RETURN(
      CompiledQuery compiled,
      core::CompileQuery(program, query, strategy, options_.pipeline));
  auto plan = std::make_shared<const CompiledQuery>(std::move(compiled));
  if (stats != nullptr) stats->compile_us = MicrosSince(start);

  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.compiles;
  if (options_.enable_plan_cache && options_.plan_cache_capacity > 0) {
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      // Another worker inserted while we compiled; keep the cached plan.
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      return it->second.plan;
    }
    while (cache_.size() >= options_.plan_cache_capacity) {
      cache_.erase(lru_.back());
      lru_.pop_back();
    }
    lru_.push_front(key);
    cache_[key] = CacheEntry{plan, lru_.begin()};
  }
  return plan;
}

exec::ThreadPool* Engine::EnsurePool() {
  if (options_.num_threads == 0) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  if (pool_ == nullptr) {
    pool_ = std::make_unique<exec::ThreadPool>(options_.num_threads);
  }
  return pool_.get();
}

Result<eval::AnswerSet> Engine::Execute(const CompiledQuery& plan,
                                        QueryStats* stats) {
  const auto start = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.executions;
  }
  Result<eval::AnswerSet> answers = Status::Internal("unreachable");
  switch (options_.execution) {
    case ExecutionMode::kBottomUp: {
      // The parallel fixpoint handles semi-naive without provenance; the
      // sequential evaluator stays the oracle for everything else.
      bool parallel = options_.num_threads > 0 &&
                      !options_.eval.track_provenance &&
                      options_.eval.strategy == eval::Strategy::kSemiNaive;
      if (parallel) {
        exec::ParallelEvalOptions popts;
        popts.eval = options_.eval;
        popts.num_shards = options_.num_shards;
        answers = exec::EvaluateQueryParallel(
            plan.program, plan.query, &db_, EnsurePool(), popts,
            stats != nullptr ? &stats->eval : nullptr);
      } else {
        answers = eval::EvaluateQuery(plan.program, plan.query, &db_,
                                      options_.eval,
                                      stats != nullptr ? &stats->eval
                                                       : nullptr);
      }
      break;
    }
    case ExecutionMode::kTopDown:
      answers = eval::SolveTopDown(plan.program, plan.query, &db_,
                                   options_.sld,
                                   stats != nullptr ? &stats->sld : nullptr);
      break;
  }
  if (stats != nullptr) stats->execute_us = MicrosSince(start);
  return answers;
}

Result<eval::AnswerSet> Engine::Query(const ast::Program& program,
                                      const ast::Atom& query,
                                      Strategy strategy, QueryStats* stats) {
  FACTLOG_ASSIGN_OR_RETURN(std::shared_ptr<const CompiledQuery> plan,
                           Compile(program, query, strategy, stats));
  return Execute(*plan, stats);
}

Result<eval::AnswerSet> Engine::Query(const std::string& program_text,
                                      Strategy strategy, QueryStats* stats) {
  FACTLOG_ASSIGN_OR_RETURN(ast::Program program,
                           ast::ParseProgram(program_text));
  if (!program.query().has_value()) {
    return Status::Invalid("program text has no '?-' query");
  }
  ast::Atom query = *program.query();
  return Query(program, query, strategy, stats);
}

Result<exec::BatchResult> Engine::ExecuteBatch(
    const std::vector<BatchQuery>& batch) {
  if (options_.execution != ExecutionMode::kBottomUp) {
    return Status::Invalid(
        "ExecuteBatch requires bottom-up execution (top-down resolution is "
        "not thread-safe against a shared database)");
  }
  exec::BatchCompileFn compile =
      [this, &batch](size_t i, exec::ExecStats* stats)
      -> Result<std::shared_ptr<const CompiledQuery>> {
    QueryStats qs;
    auto plan =
        Compile(batch[i].program, batch[i].query, batch[i].strategy, &qs);
    stats->cache_hit = qs.cache_hit;
    stats->compile_us = qs.compile_us;
    return plan;
  };
  FACTLOG_ASSIGN_OR_RETURN(
      exec::BatchResult result,
      exec::RunBatch(EnsurePool(), &db_, batch.size(), compile,
                     options_.eval));
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.batches;
    stats_.executions += result.summary.succeeded + result.summary.failed;
  }
  return result;
}

Result<exec::BatchResult> Engine::ExecuteBatch(
    const std::vector<std::string>& program_texts, Strategy strategy) {
  // Parse failures are per-query outcomes, not batch failures: valid texts
  // still execute, and the invalid ones report their status index-aligned.
  std::vector<BatchQuery> batch;
  std::vector<size_t> batch_to_original;
  std::vector<Status> parse_errors(program_texts.size(), Status::OK());
  for (size_t i = 0; i < program_texts.size(); ++i) {
    auto program = ast::ParseProgram(program_texts[i]);
    if (!program.ok()) {
      parse_errors[i] = program.status();
      continue;
    }
    if (!program->query().has_value()) {
      parse_errors[i] =
          Status::Invalid("batch program text has no '?-' query: " +
                          program_texts[i]);
      continue;
    }
    BatchQuery q;
    q.query = *program->query();
    q.program = std::move(program).value();
    q.strategy = strategy;
    batch.push_back(std::move(q));
    batch_to_original.push_back(i);
  }

  FACTLOG_ASSIGN_OR_RETURN(exec::BatchResult ran, ExecuteBatch(batch));
  if (batch.size() == program_texts.size()) return ran;

  // Scatter the executed results back to their original positions.
  exec::BatchResult result;
  result.answers.resize(program_texts.size());
  result.stats.resize(program_texts.size());
  result.summary = ran.summary;
  result.summary.queries = program_texts.size();
  for (size_t b = 0; b < batch.size(); ++b) {
    result.answers[batch_to_original[b]] = std::move(ran.answers[b]);
    result.stats[batch_to_original[b]] = std::move(ran.stats[b]);
  }
  for (size_t i = 0; i < program_texts.size(); ++i) {
    if (!parse_errors[i].ok()) {
      result.stats[i].status = parse_errors[i];
      ++result.summary.failed;
    }
  }
  return result;
}

EngineStats Engine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t Engine::plan_cache_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

void Engine::ClearPlanCache() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.clear();
  lru_.clear();
}

}  // namespace factlog::api
