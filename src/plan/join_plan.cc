#include "plan/join_plan.h"

#include <algorithm>
#include <cmath>

#include "ast/special_predicates.h"
#include "plan/stats_catalog.h"

namespace factlog::plan {

namespace {

uint64_t RoundRows(double rows) {
  return std::max<uint64_t>(1, static_cast<uint64_t>(std::llround(rows)));
}

bool TermGround(const ast::Term& t, const std::set<std::string>& bound) {
  switch (t.kind()) {
    case ast::Term::Kind::kVariable:
      return bound.count(t.var_name()) > 0;
    case ast::Term::Kind::kInt:
    case ast::Term::Kind::kSymbol:
      return true;
    case ast::Term::Kind::kCompound:
      for (const ast::Term& a : t.args()) {
        if (!TermGround(a, bound)) return false;
      }
      return true;
  }
  return false;
}

void BindTerm(const ast::Term& t, std::set<std::string>* bound) {
  std::vector<std::string> vars;
  t.CollectVars(&vars);
  bound->insert(vars.begin(), vars.end());
}

void BindAtom(const ast::Atom& a, std::set<std::string>* bound) {
  std::vector<std::string> vars;
  a.CollectVars(&vars);
  bound->insert(vars.begin(), vars.end());
}

// Whether the builtin literal can run under `bound`, mirroring the engines'
// runtime requirements (eval/rule_eval.cc).
bool BuiltinExecutable(const ast::Atom& a, const std::set<std::string>& bound) {
  const std::string& p = a.predicate();
  if (p == ast::kEqualPredicate) {
    return a.arity() == 2 && (TermGround(a.args()[0], bound) ||
                              TermGround(a.args()[1], bound));
  }
  if (p == ast::kAffinePredicate) {
    return a.arity() == 4 && TermGround(a.args()[1], bound) &&
           TermGround(a.args()[2], bound) &&
           (TermGround(a.args()[0], bound) || TermGround(a.args()[3], bound));
  }
  if (p == ast::kGeqPredicate) {
    return a.arity() == 2 && TermGround(a.args()[0], bound) &&
           TermGround(a.args()[1], bound);
  }
  return false;
}

// Binding effect of running a literal under `bound` (matches
// eval::StaticIndexCols): a relation match grounds every variable; equal and
// affine bind the side computed from the ground one; geq binds nothing.
void BindLiteral(const ast::Atom& a, std::set<std::string>* bound) {
  const std::string& p = a.predicate();
  if (!ast::IsBuiltinPredicate(p)) {
    BindAtom(a, bound);
    return;
  }
  if (p == ast::kEqualPredicate && a.arity() == 2) {
    if (TermGround(a.args()[0], *bound)) {
      BindTerm(a.args()[1], bound);
    } else if (TermGround(a.args()[1], *bound)) {
      BindTerm(a.args()[0], bound);
    }
  } else if (p == ast::kAffinePredicate && a.arity() == 4) {
    if (TermGround(a.args()[0], *bound)) {
      BindTerm(a.args()[3], bound);
    } else if (TermGround(a.args()[3], *bound)) {
      BindTerm(a.args()[0], bound);
    }
  }
  // geq: pure test.
}

std::vector<int> GroundCols(const ast::Atom& a,
                            const std::set<std::string>& bound) {
  std::vector<int> cols;
  for (size_t i = 0; i < a.arity(); ++i) {
    if (TermGround(a.args()[i], bound)) cols.push_back(static_cast<int>(i));
  }
  return cols;
}

uint64_t BaseEstimate(const std::string& pred, const PlanOptions& opts) {
  if (opts.delta_preds.count(pred) > 0) {
    // A measured mean delta size beats the flat default: a fixpoint whose
    // frontier actually runs thousands of rows wide plans accordingly.
    auto dit = opts.delta_hints.find(pred);
    if (dit != opts.delta_hints.end()) return RoundRows(dit->second);
    return opts.cost.delta_rows;
  }
  auto it = opts.extent_hints.find(pred);
  if (it != opts.extent_hints.end()) return std::max<uint64_t>(1, it->second);
  return opts.cost.default_rows;
}

// Cost of scheduling relation literal `a` next: its extent estimate shrunk
// by a fixed selectivity per ground argument position; a fully ground
// literal is a containment check (cost 0). A measured selectivity for the
// literal's exact adornment (rows matched per probe with these columns
// bound) replaces the shift model outright — except for delta occurrences,
// whose probe statistics are dominated by the much larger full extent and
// would push the semi-naive frontier out of the driver seat.
uint64_t LiteralCost(const ast::Atom& a, const std::set<std::string>& bound,
                     const PlanOptions& opts) {
  std::vector<int> cols = GroundCols(a, bound);
  const size_t ground = cols.size();
  if (ground == a.arity() && a.arity() > 0) return 0;
  if (opts.delta_preds.count(a.predicate()) == 0) {
    auto pit = opts.probe_hints.find(a.predicate());
    if (pit != opts.probe_hints.end()) {
      auto hit = pit->second.find(AdornmentPattern(a.arity(), cols));
      if (hit != pit->second.end()) return RoundRows(hit->second);
    }
  }
  uint64_t est = BaseEstimate(a.predicate(), opts);
  unsigned shift = static_cast<unsigned>(
      std::min<size_t>(ground * opts.cost.bits_per_bound_col, 60));
  return std::max<uint64_t>(1, est >> shift);
}

// True when every builtin is executable at its source position — the
// contract left-to-right evaluation relies on. Rules violating it keep
// their source order so the runtime error is preserved verbatim.
bool SourceOrderWellFormed(const ast::Rule& rule) {
  std::set<std::string> bound;
  for (const ast::Atom& lit : rule.body()) {
    if (ast::IsBuiltinPredicate(lit.predicate())) {
      if (!BuiltinExecutable(lit, bound)) return false;
    }
    BindLiteral(lit, &bound);
  }
  return true;
}

// Appends literal `idx` to the plan, recording its index columns and
// binding its variables.
void Schedule(const ast::Rule& rule, size_t idx, uint64_t est,
              std::set<std::string>* bound, JoinPlan* plan) {
  const ast::Atom& lit = rule.body()[idx];
  LiteralPlan lp;
  lp.body_index = idx;
  lp.is_relation = !ast::IsBuiltinPredicate(lit.predicate());
  lp.est_rows = est;
  if (lp.is_relation) lp.index_cols = GroundCols(lit, *bound);
  if (lp.is_relation && plan->driver < 0) {
    plan->driver = static_cast<int>(idx);
  }
  plan->order.push_back(std::move(lp));
  BindLiteral(lit, bound);
}

}  // namespace

JoinPlan PlanRule(const ast::Rule& rule, const PlanOptions& opts) {
  const std::vector<ast::Atom>& body = rule.body();
  JoinPlan plan;
  plan.order.reserve(body.size());
  std::set<std::string> bound;

  const bool reorder = opts.reorder && SourceOrderWellFormed(rule);
  const size_t pinned = std::min(opts.pinned_prefix, body.size());

  if (!reorder) {
    for (size_t i = 0; i < body.size(); ++i) {
      Schedule(rule, i, BaseEstimate(body[i].predicate(), opts), &bound,
               &plan);
    }
    return plan;
  }

  std::vector<bool> done(body.size(), false);
  size_t remaining = body.size();
  for (size_t i = 0; i < pinned; ++i) {
    Schedule(rule, i, BaseEstimate(body[i].predicate(), opts), &bound, &plan);
    done[i] = true;
    --remaining;
  }

  while (remaining > 0) {
    // Builtins run the moment their inputs are bound: they filter or compute
    // in O(1) and may bind variables that make later literals cheaper.
    bool scheduled_builtin = false;
    for (size_t i = 0; i < body.size(); ++i) {
      if (done[i] || !ast::IsBuiltinPredicate(body[i].predicate())) continue;
      if (BuiltinExecutable(body[i], bound)) {
        Schedule(rule, i, 0, &bound, &plan);
        done[i] = true;
        --remaining;
        scheduled_builtin = true;
        break;
      }
    }
    if (scheduled_builtin) continue;

    // Cheapest relation literal next; ties break toward source order.
    size_t best = body.size();
    uint64_t best_cost = 0;
    for (size_t i = 0; i < body.size(); ++i) {
      if (done[i] || ast::IsBuiltinPredicate(body[i].predicate())) continue;
      uint64_t cost = LiteralCost(body[i], bound, opts);
      if (best == body.size() || cost < best_cost) {
        best = i;
        best_cost = cost;
      }
    }
    if (best == body.size()) {
      // Only unexecutable builtins remain — impossible for a well-formed
      // source order (checked above), but stay total: emit in source order.
      for (size_t i = 0; i < body.size(); ++i) {
        if (done[i]) continue;
        Schedule(rule, i, 0, &bound, &plan);
        done[i] = true;
        --remaining;
      }
      break;
    }
    Schedule(rule, best, BaseEstimate(body[best].predicate(), opts), &bound,
             &plan);
    done[best] = true;
    --remaining;
  }

  for (size_t k = 0; k < plan.order.size(); ++k) {
    if (plan.order[k].body_index != k) {
      plan.reordered = true;
      break;
    }
  }
  return plan;
}

std::string JoinPlan::Summary() const {
  std::string out = "order [";
  for (size_t k = 0; k < order.size(); ++k) {
    if (k > 0) out += ", ";
    out += std::to_string(order[k].body_index);
  }
  out += "] driver ";
  out += driver < 0 ? "-" : std::to_string(driver);
  out += " index cols [";
  for (size_t k = 0; k < order.size(); ++k) {
    if (k > 0) out += " ";
    out += "[";
    for (size_t c = 0; c < order[k].index_cols.size(); ++c) {
      if (c > 0) out += ",";
      out += std::to_string(order[k].index_cols[c]);
    }
    out += "]";
  }
  out += "]";
  return out;
}

bool ProgramPlan::Compatible(const ast::Program& program) const {
  if (rules.size() != program.rules().size()) return false;
  for (size_t i = 0; i < rules.size(); ++i) {
    if (rules[i].order.size() != program.rules()[i].body().size()) {
      return false;
    }
  }
  return true;
}

size_t ProgramPlan::reordered_rules() const {
  size_t n = 0;
  for (const JoinPlan& p : rules) {
    if (p.reordered) ++n;
  }
  return n;
}

ProgramPlan PlanProgram(const ast::Program& program, PlanOptions opts) {
  for (const std::string& p : program.IdbPredicates()) {
    opts.delta_preds.insert(p);
  }
  ProgramPlan plan;
  plan.rules.reserve(program.rules().size());
  for (const ast::Rule& rule : program.rules()) {
    plan.rules.push_back(PlanRule(rule, opts));
  }
  return plan;
}

std::string Explain(const ast::Program& program, const ProgramPlan& plan,
                    const StatsCatalog* observed) {
  std::map<std::string, PredicateStats> stats;
  if (observed != nullptr) stats = observed->Snapshot();
  std::string out;
  const size_t n = std::min(plan.rules.size(), program.rules().size());
  for (size_t i = 0; i < n; ++i) {
    const ast::Rule& rule = program.rules()[i];
    const JoinPlan& jp = plan.rules[i];
    out += "rule " + std::to_string(i) + ": " + rule.ToString() + "\n";
    for (size_t k = 0; k < jp.order.size(); ++k) {
      const LiteralPlan& lp = jp.order[k];
      const ast::Atom& lit = rule.body()[lp.body_index];
      out += "  " + std::to_string(k) + ". " + lit.ToString();
      if (!lp.is_relation) {
        out += "  (builtin)";
      } else {
        out += "  index [";
        for (size_t c = 0; c < lp.index_cols.size(); ++c) {
          if (c > 0) out += ", ";
          out += std::to_string(lp.index_cols[c]);
        }
        out += "] est " + std::to_string(lp.est_rows) + " rows";
        if (observed != nullptr) {
          // Observed column: the measured rows-per-probe for this literal's
          // adornment when one exists, else the decayed observed extent.
          auto sit = stats.find(lit.predicate());
          std::string obs = "-";
          if (sit != stats.end()) {
            auto pit = sit->second.probes.find(
                AdornmentPattern(lit.arity(), lp.index_cols));
            if (pit != sit->second.probes.end() && pit->second.runs > 0) {
              obs = std::to_string(RoundRows(pit->second.MatchedPerProbe()));
            } else if (sit->second.extent_runs > 0) {
              obs = std::to_string(RoundRows(sit->second.extent)) + " extent";
            }
          }
          out += ", observed " + obs;
        }
        if (static_cast<int>(lp.body_index) == jp.driver) out += "  <- driver";
      }
      out += "\n";
    }
    if (jp.order.empty()) out += "  (fact)\n";
  }
  return out;
}

}  // namespace factlog::plan
