#include "plan/stats_catalog.h"

#include <algorithm>

namespace factlog::plan {

namespace {

// First observation replaces the zero-initialized value outright; later ones
// decay toward the new sample. `runs` distinguishes the two.
double Decay(double old_value, double new_value, uint64_t runs) {
  if (runs == 0) return new_value;
  return (1.0 - StatsCatalog::kAlpha) * old_value +
         StatsCatalog::kAlpha * new_value;
}

}  // namespace

std::string AdornmentPattern(size_t arity, const std::vector<int>& bound_cols) {
  std::string pattern(arity, 'f');
  for (int c : bound_cols) {
    if (c >= 0 && static_cast<size_t>(c) < arity) pattern[c] = 'b';
  }
  return pattern;
}

void StatsCatalog::ObserveExtent(const std::string& pred, uint64_t rows) {
  std::lock_guard<std::mutex> lock(mu_);
  PredicateStats& ps = entries_[pred];
  ps.extent = Decay(ps.extent, static_cast<double>(rows), ps.extent_runs);
  ++ps.extent_runs;
}

void StatsCatalog::ObserveDelta(const std::string& pred, double mean_rows) {
  std::lock_guard<std::mutex> lock(mu_);
  PredicateStats& ps = entries_[pred];
  ps.delta_mean = Decay(ps.delta_mean, mean_rows, ps.delta_runs);
  ++ps.delta_runs;
}

void StatsCatalog::ObserveProbes(const std::string& pred,
                                 const std::string& pattern, uint64_t probes,
                                 uint64_t matched) {
  if (probes == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  ProbeStats& st = entries_[pred].probes[pattern];
  st.probes = Decay(st.probes, static_cast<double>(probes), st.runs);
  st.matched = Decay(st.matched, static_cast<double>(matched), st.runs);
  ++st.runs;
}

void StatsCatalog::ObserveBatch(const std::vector<ProbeObservation>& batch) {
  // One batch is one run: merge duplicate (pred, adornment) entries first so
  // a run that touched the same literal shape from several rules decays the
  // catalog exactly once.
  std::map<std::pair<std::string, std::string>, std::pair<uint64_t, uint64_t>>
      merged;
  for (const ProbeObservation& obs : batch) {
    if (obs.probes == 0) continue;
    auto& slot =
        merged[{obs.pred, AdornmentPattern(obs.arity, obs.bound_cols)}];
    slot.first += obs.probes;
    slot.second += obs.matched;
  }
  for (const auto& [key, totals] : merged) {
    ObserveProbes(key.first, key.second, totals.first, totals.second);
  }
}

void StatsCatalog::SeedPlanOptions(PlanOptions* opts) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [pred, ps] : entries_) {
    if (ps.extent_runs > 0 && opts->extent_hints.count(pred) == 0) {
      opts->extent_hints[pred] =
          std::max<uint64_t>(1, static_cast<uint64_t>(ps.extent + 0.5));
    }
    if (ps.delta_runs > 0) opts->delta_hints[pred] = ps.delta_mean;
    for (const auto& [pattern, st] : ps.probes) {
      if (st.runs > 0 && st.probes > 0) {
        opts->probe_hints[pred][pattern] = st.MatchedPerProbe();
      }
    }
  }
}

void StatsCatalog::Merge(const StatsCatalog& other) {
  std::map<std::string, PredicateStats> theirs = other.Snapshot();
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [pred, ps] : theirs) {
    PredicateStats& mine = entries_[pred];
    if (ps.extent_runs > 0) {
      mine.extent = Decay(mine.extent, ps.extent, mine.extent_runs);
      mine.extent_runs += ps.extent_runs;
    }
    if (ps.delta_runs > 0) {
      mine.delta_mean = Decay(mine.delta_mean, ps.delta_mean, mine.delta_runs);
      mine.delta_runs += ps.delta_runs;
    }
    for (const auto& [pattern, st] : ps.probes) {
      ProbeStats& target = mine.probes[pattern];
      target.probes = Decay(target.probes, st.probes, target.runs);
      target.matched = Decay(target.matched, st.matched, target.runs);
      target.runs += st.runs;
    }
  }
}

std::map<std::string, PredicateStats> StatsCatalog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

void StatsCatalog::Restore(std::map<std::string, PredicateStats> entries) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_ = std::move(entries);
}

size_t StatsCatalog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void StatsCatalog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

}  // namespace factlog::plan
