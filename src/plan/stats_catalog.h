// Runtime feedback for the join planner: observed cardinalities keyed by
// (predicate, adornment), decayed exponentially across runs.
//
// The cost model in join_plan.h plans from static guesses — exact hints for
// base relations, defaults for everything else, a flat selectivity per bound
// column. This catalog closes the loop: every evaluator (sequential,
// parallel, incremental delta passes) reports what it actually saw —
//
//   * full extents per predicate (rows at fixpoint),
//   * mean per-iteration delta sizes (how big the semi-naive frontier
//     really runs), and
//   * per-adornment probe selectivities (rows matched per index probe with
//     a given set of bound columns),
//
// and `SeedPlanOptions` turns the decayed aggregates back into the
// `PlanOptions` hint maps the planner consumes. Adornments are the classic
// bound/free strings ("bf" = first column bound), so a predicate probed two
// different ways keeps two independent selectivity estimates.
//
// Decay is exponential with factor kAlpha per observation batch: recent runs
// dominate, one skewed run cannot poison the catalog forever, and a steady
// workload converges to its true cardinalities. The catalog is thread-safe
// (a single internal mutex; observation batches are coarse — once per
// evaluation, not per probe) and plain-data snapshots make it trivially
// persistable (storage/meta.cc serializes it into checkpoints).
//
// Layering: like join_plan, this depends only on std. eval/, exec/, inc/,
// api/, and storage/ all sit above it.

#ifndef FACTLOG_PLAN_STATS_CATALOG_H_
#define FACTLOG_PLAN_STATS_CATALOG_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "plan/join_plan.h"

namespace factlog::plan {

/// "bf"-style adornment for `arity` columns with `bound_cols` bound.
std::string AdornmentPattern(size_t arity, const std::vector<int>& bound_cols);

/// Decayed per-adornment probe statistics.
struct ProbeStats {
  double probes = 0;   // decayed mean probe count per run
  double matched = 0;  // decayed mean rows matched per run
  uint64_t runs = 0;

  /// Rows matched per probe — the planner's selectivity estimate.
  double MatchedPerProbe() const {
    return probes > 0 ? matched / probes : 0.0;
  }
};

/// Decayed per-predicate statistics.
struct PredicateStats {
  double extent = 0;      // decayed observed full extent (rows)
  double delta_mean = 0;  // decayed mean per-iteration delta size (rows)
  uint64_t extent_runs = 0;
  uint64_t delta_runs = 0;
  std::map<std::string, ProbeStats> probes;  // keyed by adornment pattern
};

/// One evaluator's probe report: `probes` index probes against `pred` with
/// `bound_cols` bound matched `matched` rows in total.
struct ProbeObservation {
  std::string pred;
  size_t arity = 0;
  std::vector<int> bound_cols;
  uint64_t probes = 0;
  uint64_t matched = 0;
};

class StatsCatalog {
 public:
  /// Decay factor per observation batch: v' = (1-kAlpha)*v + kAlpha*new.
  static constexpr double kAlpha = 0.5;

  /// Records a predicate's observed full extent after an evaluation.
  void ObserveExtent(const std::string& pred, uint64_t rows);
  /// Records the mean per-iteration delta size a fixpoint saw for `pred`.
  void ObserveDelta(const std::string& pred, double mean_rows);
  /// Records one adornment's probe totals for a run.
  void ObserveProbes(const std::string& pred, const std::string& pattern,
                     uint64_t probes, uint64_t matched);
  /// Convenience: folds a batch of evaluator observations.
  void ObserveBatch(const std::vector<ProbeObservation>& batch);

  /// Seeds the planner hint maps from the catalog. Live `extent_hints`
  /// already present in `opts` win (they are exact); the catalog fills
  /// extents only for unhinted predicates (the IDB, whose sizes no one
  /// knows at compile time) and always supplies `delta_hints` and
  /// `probe_hints`.
  void SeedPlanOptions(PlanOptions* opts) const;

  /// Folds another catalog in, observation by observation.
  void Merge(const StatsCatalog& other);

  /// Plain-data view for persistence.
  std::map<std::string, PredicateStats> Snapshot() const;
  /// Replaces the catalog contents (checkpoint restore).
  void Restore(std::map<std::string, PredicateStats> entries);

  size_t size() const;
  void Clear();

 private:
  mutable std::mutex mu_;
  std::map<std::string, PredicateStats> entries_;
};

}  // namespace factlog::plan

#endif  // FACTLOG_PLAN_STATS_CATALOG_H_
