// Compile-time join planning: one cost-based JoinPlan IR shared by every
// evaluator.
//
// The paper's thesis is that evaluation work should be decided at compile
// time — factoring rewrites a program once so every later evaluation touches
// fewer arguments. The runtime side of that economy is the join order: which
// body literal drives each rule, which index each literal is probed with,
// and which literal's extent the parallel fixpoint partitions. This module
// decides all three once per compiled rule:
//
//   * `PlanRule` runs a deterministic greedy cost model over the rule body.
//     At each step it schedules the cheapest remaining relation literal,
//     where cost is the literal's estimated extent (an exact size hint when
//     the caller has one, a default otherwise; literals of delta-driven
//     predicates — the semi-naive IDB — are assumed delta-sized) shrunk by a
//     fixed selectivity per argument position already ground under the
//     bindings accumulated so far. Ties break toward source order, so the
//     plan deviates from left-to-right only when the model clearly prefers
//     it. Builtins are scheduled eagerly as soon as their inputs are bound.
//
//   * The per-literal `index_cols` — the argument positions ground when the
//     planned join reaches the literal — are the rule's complete index
//     requirement: engines pre-build exactly these indices before sharing
//     relations read-only across threads (exec::PrewarmIndexes, the parallel
//     fixpoint's prewarm step).
//
//   * The `driver` is the first relation literal in plan order: the literal
//     whose extent the parallel fixpoint partitions into per-shard tasks
//     (delta shards when the driver is the delta occurrence itself, the
//     driver's frozen extent otherwise — which removes the duplicated
//     rule-prefix re-enumeration for right-linear rules).
//
// A rule whose source order would fail at runtime (a builtin unexecutable at
// its source position, e.g. `equal/2` with both sides unbound) is left in
// source order so the error surfaces exactly as written. Planning is pure
// and deterministic: same rule, same options, same plan.
//
// Layering: this module depends only on ast/ and common/. eval/, exec/,
// inc/, and core/ all sit above it.

#ifndef FACTLOG_PLAN_JOIN_PLAN_H_
#define FACTLOG_PLAN_JOIN_PLAN_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "ast/program.h"
#include "ast/rule.h"

namespace factlog::plan {

class StatsCatalog;

/// The cost model's tunable constants, collected in one documented place
/// (they used to be scattered literals). These only have to *rank* literals,
/// not predict cardinalities, so they are deliberately coarse; measured
/// feedback (`delta_hints` / `probe_hints`, seeded from a StatsCatalog)
/// overrides them wherever an observation exists.
struct CostModelParams {
  /// Extent estimate (rows) for predicates without a hint.
  uint64_t default_rows = 1024;
  /// Bits of selectivity credited per ground argument position: each bound
  /// column is assumed to cut the extent by 2^bits (16x by default).
  unsigned bits_per_bound_col = 4;
  /// Extent estimate (rows) for delta-driven predicates — default_rows/64,
  /// keeping the semi-naive frontier planned toward the front.
  uint64_t delta_rows = 16;
};

struct PlanOptions {
  /// Known extent sizes (rows) by predicate — e.g. a snapshot of the base
  /// relations. Missing predicates fall back to `cost.default_rows`.
  std::map<std::string, uint64_t> extent_hints;
  /// Predicates whose body occurrences range over fixpoint deltas rather
  /// than full extents (the semi-naive IDB): estimated at `cost.delta_rows`
  /// (or the measured `delta_hints` value) regardless of extent hints, so
  /// delta-driven literals plan toward the front. PlanProgram additionally
  /// unions in the program's own IDB predicates.
  std::set<std::string> delta_preds;
  /// Observed mean per-iteration delta sizes by predicate (StatsCatalog
  /// feedback) — preferred over `cost.delta_rows` for delta-driven
  /// literals.
  std::map<std::string, double> delta_hints;
  /// Observed rows matched per probe, keyed by predicate then adornment
  /// pattern ("bf" = first column bound; see plan::AdornmentPattern).
  /// An exact-pattern match replaces the per-bound-column shift model for
  /// non-delta literals.
  std::map<std::string, std::map<std::string, double>> probe_hints;
  /// The cost model's constants; callers (optimizer_cli --cost-*) may tune.
  CostModelParams cost;
  /// Keep the first N body literals exactly in place (and bind their
  /// variables first). The incremental engine pins its candidate guard /
  /// driving occurrence this way.
  size_t pinned_prefix = 0;
  /// When false the plan keeps the source body order (the left-to-right
  /// baseline); index_cols and the driver are still computed.
  bool reorder = true;
};

/// One body literal's slot in the planned evaluation order.
struct LiteralPlan {
  /// The literal's position in the rule's source body.
  size_t body_index = 0;
  /// Stored predicate (EDB or IDB) as opposed to a builtin.
  bool is_relation = false;
  /// Argument positions ground when the planned join reaches this literal —
  /// the index key its relation is probed with (empty: full scan / builtin).
  std::vector<int> index_cols;
  /// The cost model's extent estimate when the literal was scheduled.
  uint64_t est_rows = 0;
};

/// The per-rule plan: evaluation order, index requirements, driver.
struct JoinPlan {
  /// Body literals in evaluation order.
  std::vector<LiteralPlan> order;
  /// Source body index of the first relation literal in plan order (the
  /// partitioning driver for delta/seed fan-out), or -1 for all-builtin
  /// bodies.
  int driver = -1;
  /// True when `order` deviates from the source body order.
  bool reordered = false;

  /// "order [1, 0] driver t index cols [[] [1]]" — one-line summary.
  std::string Summary() const;
};

/// Plans one rule. Deterministic; never fails (ill-formed builtin orders
/// degrade to the identity plan).
JoinPlan PlanRule(const ast::Rule& rule, const PlanOptions& opts = {});

/// Plans for every rule of a program, index-aligned with program.rules().
struct ProgramPlan {
  std::vector<JoinPlan> rules;

  /// True when the plan structurally matches `program` (rule count and body
  /// sizes), i.e. it was built from this program.
  bool Compatible(const ast::Program& program) const;
  /// Number of rules whose planned order deviates from source order.
  size_t reordered_rules() const;
};

/// Plans every rule. `opts.delta_preds` is unioned with the program's IDB
/// predicates (their occurrences range over deltas in semi-naive fixpoints).
ProgramPlan PlanProgram(const ast::Program& program, PlanOptions opts = {});

/// Multi-line human-readable rendering: one block per rule with the source
/// rule, join order, per-literal index columns, and driver literal. When an
/// `observed` catalog is supplied, each relation literal also shows the
/// measured cardinality for its adornment next to the estimate.
std::string Explain(const ast::Program& program, const ProgramPlan& plan,
                    const StatsCatalog* observed = nullptr);

}  // namespace factlog::plan

#endif  // FACTLOG_PLAN_JOIN_PLAN_H_
