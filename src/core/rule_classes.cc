#include "core/rule_classes.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

#include "analysis/standard_form.h"
#include "ast/substitution.h"

namespace factlog::core {

namespace {

using analysis::ConjunctiveQuery;
using ast::Atom;
using ast::Rule;
using ast::Term;

std::set<std::string> VarSet(const std::vector<std::string>& vars) {
  return std::set<std::string>(vars.begin(), vars.end());
}

bool Intersects(const std::set<std::string>& a,
                const std::set<std::string>& b) {
  for (const std::string& v : a) {
    if (b.count(v) > 0) return true;
  }
  return false;
}

// Variables of `atom`, as a set.
std::set<std::string> AtomVars(const Atom& atom) {
  std::vector<std::string> vars;
  atom.CollectVars(&vars);
  return VarSet(vars);
}

// Partition of the EDB atoms of a rule body into connected components by
// shared variables.
std::vector<std::vector<int>> ConnectedComponents(
    const std::vector<const Atom*>& atoms) {
  int n = static_cast<int>(atoms.size());
  std::vector<int> parent(n);
  for (int i = 0; i < n; ++i) parent[i] = i;
  std::function<int(int)> find = [&](int x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  std::vector<std::set<std::string>> vars(n);
  for (int i = 0; i < n; ++i) vars[i] = AtomVars(*atoms[i]);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (Intersects(vars[i], vars[j])) parent[find(i)] = find(j);
    }
  }
  std::map<int, std::vector<int>> groups;
  for (int i = 0; i < n; ++i) groups[find(i)].push_back(i);
  std::vector<std::vector<int>> out;
  for (auto& [root, members] : groups) out.push_back(std::move(members));
  return out;
}

// Head terms of a Definition 4.5 conjunction: the variables of `lit` at the
// given positions.
std::vector<Term> ProjectVars(const Atom& lit, const std::vector<int>& pos) {
  std::vector<Term> out;
  out.reserve(pos.size());
  for (int p : pos) out.push_back(lit.args()[p]);
  return out;
}

std::vector<std::string> ProjectVarNames(const Atom& lit,
                                         const std::vector<int>& pos) {
  std::vector<std::string> out;
  out.reserve(pos.size());
  for (int p : pos) out.push_back(lit.args()[p].var_name());
  return out;
}

// Classifies one standard-form rule; fills in `shape`.
void ClassifyRule(const Rule& rule, const std::string& pred,
                  const analysis::Adornment& adornment, RuleShape* shape) {
  const std::vector<int> bound_pos = adornment.BoundPositions();
  const std::vector<int> free_pos = adornment.FreePositions();
  shape->standard_rule = rule;

  const Atom& head = rule.head();
  std::vector<std::string> hb = ProjectVarNames(head, bound_pos);
  std::vector<std::string> hf = ProjectVarNames(head, free_pos);
  std::set<std::string> hb_set = VarSet(hb);
  std::set<std::string> hf_set = VarSet(hf);

  // Occurrences of the recursive predicate.
  std::vector<const Atom*> edb_atoms;
  for (size_t i = 0; i < rule.body().size(); ++i) {
    const Atom& lit = rule.body()[i];
    if (lit.predicate() != pred) {
      edb_atoms.push_back(&lit);
      continue;
    }
    OccurrenceInfo occ;
    occ.body_index = static_cast<int>(i);
    occ.bound_vars = ProjectVarNames(lit, bound_pos);
    occ.free_vars = ProjectVarNames(lit, free_pos);
    occ.left = (occ.bound_vars == hb);
    occ.right = (occ.free_vars == hf);
    shape->occurrences.push_back(std::move(occ));
  }

  // Exit rules: no recursive occurrence.
  if (shape->occurrences.empty()) {
    shape->kind = RuleShape::Kind::kExit;
    shape->bound_exit = ConjunctiveQuery(ProjectVars(head, bound_pos),
                                         rule.body());
    shape->free_exit = ConjunctiveQuery(ProjectVars(head, free_pos),
                                        rule.body());
    return;
  }

  // Every occurrence must be left- or right-linear, and at most one may be
  // right-linear.
  int lefts = 0;
  const OccurrenceInfo* right_occ = nullptr;
  std::set<std::string> u_vars;  // free vars of left occurrences
  for (const OccurrenceInfo& occ : shape->occurrences) {
    if (occ.left && occ.right) {
      shape->diagnostic = "head literal occurs in body (degenerate rule)";
      return;
    }
    if (occ.left) {
      ++lefts;
      for (const std::string& v : occ.free_vars) u_vars.insert(v);
    } else if (occ.right) {
      if (right_occ != nullptr) {
        shape->diagnostic = "multiple right-linear occurrences";
        return;
      }
      right_occ = &occ;
    } else {
      shape->diagnostic =
          "occurrence at body index " + std::to_string(occ.body_index) +
          " is neither left- nor right-linear";
      return;
    }
  }

  // Left-occurrence answer variables must be fresh (not head free vars);
  // otherwise the rule escapes the Definition 4.1/4.3 template.
  if (Intersects(u_vars, hf_set)) {
    shape->diagnostic = "left occurrence shares its answer variables with "
                        "the head's free arguments";
    return;
  }

  std::set<std::string> v_vars;
  if (right_occ != nullptr) {
    v_vars = VarSet(right_occ->bound_vars);
    if (Intersects(v_vars, hf_set)) {
      shape->diagnostic =
          "right occurrence binds a head free variable in a bound position";
      return;
    }
  }

  std::vector<std::vector<int>> components = ConnectedComponents(edb_atoms);
  auto component_atoms = [&](const std::vector<int>& comp) {
    std::vector<Atom> out;
    for (int i : comp) out.push_back(*edb_atoms[i]);
    return out;
  };
  auto component_vars = [&](const std::vector<int>& comp) {
    std::set<std::string> out;
    for (int i : comp) {
      for (const std::string& v : AtomVars(*edb_atoms[i])) out.insert(v);
    }
    return out;
  };

  if (right_occ == nullptr) {
    // Candidate left-linear rule: EDB atoms split into left(X) and
    // last(U1, ..., Um, Y), disjoint.
    std::vector<Atom> left_atoms, last_atoms;
    for (const auto& comp : components) {
      std::set<std::string> cv = component_vars(comp);
      bool touches_bound = Intersects(cv, hb_set);
      bool touches_free = Intersects(cv, u_vars) || Intersects(cv, hf_set);
      if (touches_bound && touches_free) {
        shape->kind = RuleShape::Kind::kPseudoLeftLinear;
        shape->diagnostic = "left and last conjunctions share variables "
                            "(pseudo-left-linear, Definition 5.3)";
        return;
      }
      auto atoms = component_atoms(comp);
      auto* dst = touches_bound ? &left_atoms : &last_atoms;
      dst->insert(dst->end(), atoms.begin(), atoms.end());
    }
    shape->kind = RuleShape::Kind::kLeftLinear;
    shape->bound_q = ConjunctiveQuery(ProjectVars(head, bound_pos), left_atoms);
    shape->free_last = ConjunctiveQuery(ProjectVars(head, free_pos),
                                        last_atoms);
    return;
  }

  if (lefts == 0) {
    // Candidate right-linear rule: first(X, V) and right(Y), disjoint.
    std::vector<Atom> first_atoms, right_atoms;
    std::set<std::string> xv = hb_set;
    xv.insert(v_vars.begin(), v_vars.end());
    for (const auto& comp : components) {
      std::set<std::string> cv = component_vars(comp);
      bool touches_first = Intersects(cv, xv);
      bool touches_free = Intersects(cv, hf_set);
      if (touches_first && touches_free) {
        shape->diagnostic =
            "first and right conjunctions share variables";
        return;
      }
      auto atoms = component_atoms(comp);
      auto* dst = touches_free ? &right_atoms : &first_atoms;
      dst->insert(dst->end(), atoms.begin(), atoms.end());
    }
    shape->kind = RuleShape::Kind::kRightLinear;
    // bound_first(X) :- first(X, V): head = bound head vars.
    shape->bound_first = ConjunctiveQuery(ProjectVars(head, bound_pos),
                                          first_atoms);
    shape->free_q = ConjunctiveQuery(ProjectVars(head, free_pos), right_atoms);
    return;
  }

  // Candidate combined rule: left(X), center(U, V), right(Y), pairwise
  // disjoint; the right occurrence's bound variables must be fresh.
  if (Intersects(v_vars, hb_set)) {
    shape->diagnostic = "right occurrence shares bound variables with the "
                        "head in a combined rule";
    return;
  }
  std::set<std::string> uv = u_vars;
  uv.insert(v_vars.begin(), v_vars.end());
  std::vector<Atom> left_atoms, center_atoms, right_atoms;
  for (const auto& comp : components) {
    std::set<std::string> cv = component_vars(comp);
    int touches = 0;
    bool tb = Intersects(cv, hb_set);
    bool tm = Intersects(cv, uv);
    bool tf = Intersects(cv, hf_set);
    touches = (tb ? 1 : 0) + (tm ? 1 : 0) + (tf ? 1 : 0);
    if (touches > 1) {
      shape->diagnostic =
          "left/center/right conjunctions share variables in combined rule";
      return;
    }
    auto atoms = component_atoms(comp);
    auto* dst = tb ? &left_atoms : (tf ? &right_atoms : &center_atoms);
    dst->insert(dst->end(), atoms.begin(), atoms.end());
  }
  shape->kind = RuleShape::Kind::kCombined;
  shape->bound_q = ConjunctiveQuery(ProjectVars(head, bound_pos), left_atoms);
  shape->free_q = ConjunctiveQuery(ProjectVars(head, free_pos), right_atoms);
  // middle(U, V): U in body-occurrence order, then V.
  std::vector<Term> middle_head;
  for (const OccurrenceInfo& occ : shape->occurrences) {
    if (!occ.left) continue;
    for (const std::string& v : occ.free_vars) {
      middle_head.push_back(Term::Var(v));
    }
  }
  for (const std::string& v : right_occ->bound_vars) {
    middle_head.push_back(Term::Var(v));
  }
  shape->middle = ConjunctiveQuery(std::move(middle_head), center_atoms);
}

}  // namespace

const char* RuleShapeKindToString(RuleShape::Kind kind) {
  switch (kind) {
    case RuleShape::Kind::kExit:
      return "exit";
    case RuleShape::Kind::kLeftLinear:
      return "left-linear";
    case RuleShape::Kind::kRightLinear:
      return "right-linear";
    case RuleShape::Kind::kCombined:
      return "combined";
    case RuleShape::Kind::kPseudoLeftLinear:
      return "pseudo-left-linear";
    case RuleShape::Kind::kUnclassified:
      return "unclassified";
  }
  return "?";
}

Result<ProgramClassification> ClassifyRules(
    const std::vector<ast::Rule>& adorned_rules, const std::string& pred,
    const analysis::Adornment& adornment) {
  ProgramClassification out;
  out.unit_program = true;
  out.predicate = pred;
  out.adornment = adornment;

  if (adornment.NumBound() == 0 ||
      adornment.NumBound() == adornment.arity()) {
    out.diagnostic = "adornment " + adornment.pattern() +
                     " has no bound or no free positions; factoring into "
                     "bound and free parts would be trivial";
    return out;
  }

  out.shapes.resize(adorned_rules.size());
  bool all_classified = true;
  for (size_t i = 0; i < adorned_rules.size(); ++i) {
    ast::FreshVarGen gen("_S");
    gen.ReserveFrom(adorned_rules[i]);
    auto standard = analysis::ToStandardForm(adorned_rules[i], {pred}, &gen);
    if (!standard.ok()) return standard.status();
    RuleShape& shape = out.shapes[i];
    shape.rule_index = static_cast<int>(i);
    ClassifyRule(*standard, pred, adornment, &shape);
    if (shape.kind == RuleShape::Kind::kExit) {
      ++out.exit_rule_count;
      if (out.exit_rule_index < 0) out.exit_rule_index = static_cast<int>(i);
    }
    if (shape.kind == RuleShape::Kind::kUnclassified ||
        shape.kind == RuleShape::Kind::kPseudoLeftLinear) {
      all_classified = false;
      if (out.diagnostic.empty()) {
        out.diagnostic = "rule " + std::to_string(i) + ": " + shape.diagnostic;
      }
    }
  }

  out.rlc_stable = all_classified && out.exit_rule_count == 1;
  if (all_classified && out.exit_rule_count != 1 && out.diagnostic.empty()) {
    out.diagnostic = "RLC-stable programs require exactly one exit rule, "
                     "found " + std::to_string(out.exit_rule_count);
  }
  return out;
}

Result<ProgramClassification> ClassifyProgram(
    const analysis::AdornedProgram& adorned) {
  if (adorned.predicates().size() != 1) {
    ProgramClassification out;
    out.diagnostic = "not a unit program: " +
                     std::to_string(adorned.predicates().size()) +
                     " adorned predicates are reachable";
    return out;
  }
  const auto& [pred_name, ap] = *adorned.predicates().begin();
  return ClassifyRules(adorned.program().rules(), pred_name, ap.adornment);
}

}  // namespace factlog::core
