// Factorability tests: the sufficient conditions of §4.2.
//
// Given a classified RLC-stable program, decides membership in the three
// classes for which Theorems 4.1-4.3 guarantee that the Magic program
// factors into bp(X) and fp(Y):
//
//   * selection-pushing (Definition 4.6, Theorem 4.1),
//   * symmetric        (Definition 4.7, Theorem 4.2),
//   * answer-propagating (Definition 4.8, Theorem 4.3).
//
// Each condition is a containment or equivalence test between Definition 4.5
// conjunctions, performed by the Chandra-Merlin test in analysis/cq.h. As
// the paper notes, these tests are NP-complete in the (small) rule size and
// polynomial when the conjunctions are empty.
//
// Definition 4.8's prose header restricts to combined rules, but its
// condition list (and the proof of Theorem 4.3) covers left- and
// right-linear rules; we implement the condition list.

#ifndef FACTLOG_CORE_FACTORABILITY_H_
#define FACTLOG_CORE_FACTORABILITY_H_

#include <string>
#include <vector>

#include "core/rule_classes.h"

namespace factlog::core {

enum class FactorClass {
  kNotFactorable,  // none of the sufficient conditions hold
  kSelectionPushing,
  kSymmetric,
  kAnswerPropagating,
};

const char* FactorClassToString(FactorClass cls);

/// Outcome of the factorability tests.
struct FactorabilityReport {
  /// First class (in the order SP, symmetric, AP) whose conditions hold.
  FactorClass cls = FactorClass::kNotFactorable;
  /// Whether each individual class's conditions hold.
  bool selection_pushing = false;
  bool symmetric = false;
  bool answer_propagating = false;
  /// Explanations of failed conditions, one per failure.
  std::vector<std::string> failures;

  bool factorable() const { return cls != FactorClass::kNotFactorable; }
};

/// Runs all three tests on a classified program. Fails with
/// kFailedPrecondition when the classification is not RLC-stable.
Result<FactorabilityReport> CheckFactorability(
    const ProgramClassification& classification);

}  // namespace factlog::core

#endif  // FACTLOG_CORE_FACTORABILITY_H_
