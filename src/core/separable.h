// Separable recursions (§6.2, Definitions 6.1-6.6, Theorem 6.3).
//
// Separable recursions [7] are linear recursions whose argument positions
// split into independent groups, admitting arity-reducing evaluation for
// full-selection queries. Theorem 6.3 shows the *reducible* separable
// recursions are subsumed by Magic Sets + factoring: the adorned program of
// a full selection consists of left-linear rules with no left conjunction
// and right-linear rules with no right conjunction, hence is
// selection-pushing. The tests cross-validate this implementation against
// core/factorability.h.

#ifndef FACTLOG_CORE_SEPARABLE_H_
#define FACTLOG_CORE_SEPARABLE_H_

#include <set>
#include <string>
#include <vector>

#include "ast/program.h"
#include "common/status.h"

namespace factlog::core {

struct SeparabilityReport {
  /// Every recursive rule has exactly one body occurrence of the predicate.
  bool linear = false;
  /// Definition 6.4 holds.
  bool separable = false;
  /// Definition 6.6: no fixed variable appears in any t_i^h.
  bool reducible = false;

  /// Per recursive rule: head argument positions sharing a variable with a
  /// nonrecursive body atom (t_i^h).
  std::vector<std::set<int>> head_shared;
  /// Per recursive rule: ditto for the body occurrence (t_i^b).
  std::vector<std::set<int>> body_shared;
  /// Per recursive rule: argument positions holding the same variable in
  /// head and body occurrence (fixed variables, Definition 6.5).
  std::vector<std::set<int>> fixed_positions;

  std::string diagnostic;
};

/// Checks Definitions 6.1-6.6 for predicate `pred` in `program`:
///   (1) no rule has shifting variables (a variable at different positions
///       of the head and body occurrences),
///   (2) t_i^h == t_i^b for every rule,
///   (3) t_i^h and t_j^h are equal or disjoint for every pair,
///   (4) removing the recursive occurrence leaves one maximal connected set.
Result<SeparabilityReport> CheckSeparable(const ast::Program& program,
                                          const std::string& pred);

/// A full selection binds a union of the report's t_i^h groups covering
/// every group it intersects — either the entire "EDB-interacting" side or
/// its complement (the two query forms of Theorem 6.2).
bool IsFullSelection(const SeparabilityReport& report, const ast::Atom& query);

}  // namespace factlog::core

#endif  // FACTLOG_CORE_SEPARABLE_H_
