#include "core/one_sided.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "ast/unify.h"

namespace factlog::core {

namespace {

using ast::Atom;
using ast::Rule;

// Index of the single body occurrence of `pred`, or an error.
Result<int> SingleOccurrence(const Rule& rule, const std::string& pred) {
  int found = -1;
  for (size_t i = 0; i < rule.body().size(); ++i) {
    if (rule.body()[i].predicate() == pred) {
      if (found >= 0) {
        return Status::FailedPrecondition("rule is not linear: " +
                                          rule.ToString());
      }
      found = static_cast<int>(i);
    }
  }
  if (found < 0) {
    return Status::FailedPrecondition("rule is not recursive: " +
                                      rule.ToString());
  }
  return found;
}

}  // namespace

Result<ast::Rule> ExpandRule(const ast::Rule& rule, const std::string& pred,
                             ast::FreshVarGen* gen) {
  FACTLOG_ASSIGN_OR_RETURN(int occ_index, SingleOccurrence(rule, pred));
  Rule renamed = ast::RenameApart(rule, gen);
  ast::Substitution subst;
  if (!ast::UnifyAtoms(rule.body()[occ_index], renamed.head(), &subst)) {
    return Status::Internal("self-unification failed for rule: " +
                            rule.ToString());
  }
  std::vector<Atom> body;
  for (int i = 0; i < occ_index; ++i) {
    body.push_back(subst.DeepApply(rule.body()[i]));
  }
  for (const Atom& b : renamed.body()) body.push_back(subst.DeepApply(b));
  for (size_t i = occ_index + 1; i < rule.body().size(); ++i) {
    body.push_back(subst.DeepApply(rule.body()[i]));
  }
  return Rule(subst.DeepApply(rule.head()), std::move(body));
}

bool AvGraphReport::IsOneSided() const {
  int moving = 0;
  bool weight_one = false;
  for (const Component& c : components) {
    if (c.has_nonzero_cycle) {
      ++moving;
      weight_one = (c.cycle_gcd == 1);
    }
  }
  return moving == 1 && weight_one;
}

bool AvGraphReport::IsSimpleOneSided() const {
  int moving = 0;
  bool simple = false;
  for (const Component& c : components) {
    if (c.has_nonzero_cycle) {
      ++moving;
      simple = (c.cycle_gcd == 1 && c.nonzero_cycles == 1);
    }
  }
  return moving == 1 && simple;
}

Result<AvGraphReport> AnalyzeAvGraph(const ast::Rule& rule,
                                     const std::string& pred) {
  FACTLOG_ASSIGN_OR_RETURN(int occ_index, SingleOccurrence(rule, pred));
  const Atom& head = rule.head();
  const Atom& occ = rule.body()[occ_index];
  if (head.arity() != occ.arity()) {
    return Status::Invalid("arity mismatch between head and occurrence");
  }

  // Node table: variables.
  std::map<std::string, int> ids;
  auto id_of = [&ids](const std::string& v) {
    auto [it, inserted] = ids.emplace(v, static_cast<int>(ids.size()));
    return it->second;
  };
  struct Edge {
    int from, to;
    int64_t weight;  // pot(to) = pot(from) + weight
  };
  std::vector<Edge> edges;

  // Weight-0 edges: variables co-occurring in a nonrecursive atom.
  for (size_t i = 0; i < rule.body().size(); ++i) {
    if (static_cast<int>(i) == occ_index) continue;
    std::vector<std::string> vars = rule.body()[i].DistinctVars();
    for (size_t k = 1; k < vars.size(); ++k) {
      edges.push_back({id_of(vars[0]), id_of(vars[k]), 0});
    }
    for (const std::string& v : vars) id_of(v);
  }
  // Weight-1 edges: head position k flows to occurrence position k. A fixed
  // variable (same name on both sides) imposes no movement, so its flow edge
  // is omitted — its positions form zero-weight components.
  for (size_t k = 0; k < head.arity(); ++k) {
    if (!head.args()[k].IsVariable() || !occ.args()[k].IsVariable()) continue;
    const std::string& hv = head.args()[k].var_name();
    const std::string& ov = occ.args()[k].var_name();
    id_of(hv);
    id_of(ov);
    if (hv == ov) continue;
    edges.push_back({id_of(hv), id_of(ov), 1});
  }

  int n = static_cast<int>(ids.size());
  std::vector<std::vector<std::pair<int, int64_t>>> adj(n);
  for (const Edge& e : edges) {
    adj[e.from].push_back({e.to, e.weight});
    adj[e.to].push_back({e.from, -e.weight});
  }

  // Potential assignment per component; inconsistencies are cycle weights.
  std::vector<int> comp(n, -1);
  std::vector<int64_t> pot(n, 0);
  std::vector<AvGraphReport::Component> components;
  for (int start = 0; start < n; ++start) {
    if (comp[start] >= 0) continue;
    int c = static_cast<int>(components.size());
    components.emplace_back();
    std::vector<int> stack = {start};
    comp[start] = c;
    pot[start] = 0;
    int64_t gcd = 0;
    int nonzero = 0;
    while (!stack.empty()) {
      int u = stack.back();
      stack.pop_back();
      for (auto [v, w] : adj[u]) {
        if (comp[v] < 0) {
          comp[v] = c;
          pot[v] = pot[u] + w;
          stack.push_back(v);
        } else {
          int64_t diff = pot[u] + w - pot[v];
          if (diff != 0) {
            gcd = std::gcd(gcd, std::abs(diff));
            ++nonzero;
          }
        }
      }
    }
    components[c].has_nonzero_cycle = (gcd != 0);
    components[c].cycle_gcd = gcd;
    // Each nonzero inconsistency is seen once per edge direction.
    components[c].nonzero_cycles = nonzero / 2;
  }

  // Attach argument positions via the head variables.
  for (size_t k = 0; k < head.arity(); ++k) {
    if (!head.args()[k].IsVariable()) continue;
    auto it = ids.find(head.args()[k].var_name());
    if (it != ids.end()) {
      components[comp[it->second]].positions.insert(static_cast<int>(k));
    }
  }

  AvGraphReport report;
  report.components = std::move(components);
  return report;
}

Result<std::optional<OneSidedForm>> FindOneSidedForm(const ast::Rule& rule,
                                                     const std::string& pred,
                                                     int max_expansions) {
  ast::FreshVarGen gen("_X");
  gen.ReserveFrom(rule);
  Rule cur = rule;
  for (int e = 0; e <= max_expansions; ++e) {
    FACTLOG_ASSIGN_OR_RETURN(int occ_index, SingleOccurrence(cur, pred));
    const Atom& head = cur.head();
    const Atom& occ = cur.body()[occ_index];

    std::set<int> persistent;
    std::set<std::string> a_vars, b_vars, c_vars;
    bool well_formed = true;
    for (size_t k = 0; k < head.arity() && well_formed; ++k) {
      if (!head.args()[k].IsVariable() || !occ.args()[k].IsVariable()) {
        well_formed = false;
        break;
      }
      const std::string& hv = head.args()[k].var_name();
      const std::string& ov = occ.args()[k].var_name();
      if (hv == ov) {
        persistent.insert(static_cast<int>(k));
        a_vars.insert(hv);
      } else {
        b_vars.insert(hv);
        c_vars.insert(ov);
      }
    }
    if (well_formed && !persistent.empty() &&
        persistent.size() < head.arity()) {
      // Vectors must be disjoint and no nonrecursive atom may touch A.
      auto intersects = [](const std::set<std::string>& x,
                           const std::set<std::string>& y) {
        return std::any_of(x.begin(), x.end(), [&y](const std::string& v) {
          return y.count(v) > 0;
        });
      };
      bool ok = !intersects(a_vars, b_vars) && !intersects(a_vars, c_vars) &&
                !intersects(b_vars, c_vars);
      for (size_t i = 0; ok && i < cur.body().size(); ++i) {
        if (static_cast<int>(i) == occ_index) continue;
        for (const std::string& v : a_vars) {
          if (cur.body()[i].ContainsVar(v)) {
            ok = false;
            break;
          }
        }
      }
      if (ok) {
        OneSidedForm form;
        form.expansions = e;
        form.rule = cur;
        form.persistent_positions = persistent;
        return std::optional<OneSidedForm>(std::move(form));
      }
    }
    if (e < max_expansions) {
      FACTLOG_ASSIGN_OR_RETURN(cur, ExpandRule(cur, pred, &gen));
    }
  }
  return std::optional<OneSidedForm>();
}

}  // namespace factlog::core
