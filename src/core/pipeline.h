// The paper's two-step optimization pipeline: Magic Sets, then factoring,
// then the §5 cleanups.
//
//   source (P, Q)
//     -> [static argument reduction, Lemma 5.1/5.2, when it unlocks a class]
//     -> adorned program P^ad               (analysis/adornment.h)
//     -> Magic program P^mg                 (transform/magic.h)
//     -> classification + factorability     (core/rule_classes.h, §4)
//     -> factored program P^fact            (core/factoring.h, §3)
//     -> optimized final program            (core/optimizations.h, §5)
//
// Every intermediate stage is retained in the PipelineResult so tests and
// benchmarks can compare them (Fig. 1 is `magic.program`, Fig. 2 is
// `factored->program`, the final unary program of Example 5.3 is
// `optimized`).

#ifndef FACTLOG_CORE_PIPELINE_H_
#define FACTLOG_CORE_PIPELINE_H_

#include <optional>
#include <string>
#include <vector>

#include "analysis/adornment.h"
#include "core/factorability.h"
#include "core/factoring.h"
#include "core/optimizations.h"
#include "core/rule_classes.h"
#include "transform/magic.h"

namespace factlog::core {

struct PipelineOptions {
  /// Retry classification after static-argument reduction (Lemma 5.1/5.2)
  /// when the first attempt is not RLC-stable or not factorable.
  bool try_static_reduction = true;
  /// Run the §5 cleanup passes on the factored program.
  bool apply_optimizations = true;
  OptimizeOptions optimize;
};

struct PipelineResult {
  /// The program/query the pipeline actually compiled (after any static
  /// argument reduction).
  ast::Program source;
  ast::Atom source_query;
  bool static_reduction_applied = false;
  std::vector<int> reduced_positions;

  analysis::AdornedProgram adorned;
  transform::MagicProgram magic;
  ProgramClassification classification;
  FactorabilityReport factorability;

  bool factoring_applied = false;
  std::optional<FactoredProgram> factored;
  /// §5-optimized factored program (when optimizations ran).
  std::optional<ast::Program> optimized;

  /// Human-readable decision log.
  std::vector<std::string> trace;

  /// The most optimized program available: optimized, else factored, else
  /// the Magic program.
  const ast::Program& final_program() const {
    if (optimized.has_value()) return *optimized;
    if (factored.has_value()) return factored->program;
    return magic.program;
  }
  const ast::Atom& final_query() const {
    return factored.has_value() ? factored->query : magic.query;
  }
};

/// Runs the full pipeline. Always produces the Magic program; factoring and
/// the §5 cleanups apply only when one of the Theorems 4.1-4.3 conditions
/// holds (reported in `factorability`).
Result<PipelineResult> OptimizeQuery(const ast::Program& program,
                                     const ast::Atom& query,
                                     const PipelineOptions& opts = {});

}  // namespace factlog::core

#endif  // FACTLOG_CORE_PIPELINE_H_
