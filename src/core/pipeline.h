// Query compilation strategies as declarative pass sequences.
//
// The paper's two-step pipeline (Magic Sets, then factoring, then the §5
// cleanups) and the baselines it is compared against (plain magic,
// supplementary magic, Counting, the §6.3 direct linear rewritings) are all
// sequences of the passes defined in core/transform_pass.h:
//
//   kFactoring:          adorn -> classify -> normalize -> magic-sets
//                        -> factorability -> factoring -> §5 fixpoint
//   kMagic:              adorn -> magic-sets
//   kSupplementaryMagic: adorn -> supplementary-magic
//   kCounting:           adorn -> classify -> counting
//   kLinearRewrite:      adorn -> classify -> linear-rewrite
//
// Every compilation additionally opens with the mandatory `lint` pass
// (static safety / arity / stratification analysis, analysis/lint.h) and
// closes with the `join-plan` pass; both run outside PassesForStrategy so
// the sequences above stay exactly the strategy's own passes.
//
// `CompileQuery` runs a sequence and packages the outcome as a
// `CompiledQuery`; `kFactoring` keeps the paper's graceful fallback (the
// Magic program when the Theorems 4.1-4.3 conditions fail), `kAuto` upgrades
// that fallback to supplementary magic. `OptimizeQuery` is the historical
// entry point, preserved as a thin wrapper that exposes every intermediate
// stage in a PipelineResult (Fig. 1 is `magic.program`, Fig. 2 is
// `factored->program`, the final unary program of Example 5.3 is
// `optimized`).

#ifndef FACTLOG_CORE_PIPELINE_H_
#define FACTLOG_CORE_PIPELINE_H_

#include <optional>
#include <string>
#include <vector>

#include "analysis/adornment.h"
#include "core/factorability.h"
#include "core/factoring.h"
#include "core/optimizations.h"
#include "core/rule_classes.h"
#include "core/transform_pass.h"
#include "transform/magic.h"

namespace factlog::core {

struct PipelineOptions {
  /// Options for the mandatory lint pass that opens every compilation
  /// (analysis/lint.h): prospective negative edges, the engine's EDB schema,
  /// and the top-down safety downgrade. Lint errors reject compilation with
  /// kInvalidArgument; warnings ride on CompiledQuery::diagnostics.
  analysis::LintOptions lint;
  /// Retry classification after static-argument reduction (Lemma 5.1/5.2)
  /// when the first attempt is not RLC-stable or not factorable.
  bool try_static_reduction = true;
  /// Run the §5 cleanup passes on the factored program.
  bool apply_optimizations = true;
  OptimizeOptions optimize;
  /// Options for the final join-plan pass (extent hints etc.). The caller —
  /// api::Engine — seeds extent_hints with its base-relation sizes; the pass
  /// fills the delta set from the final program's IDB itself.
  plan::PlanOptions planner;
};

/// The pass sequence implementing `strategy`. kAuto returns the kFactoring
/// sequence (the caller handles the supplementary-magic fallback, as
/// CompileQuery does).
PassSequence PassesForStrategy(Strategy strategy,
                               const PipelineOptions& opts = {});

/// Compiles (program, query) with the given strategy into a CompiledQuery.
///
///  * kFactoring: the paper pipeline; falls back to the Magic program when
///    no Theorem 4.1-4.3 condition holds (factoring_applied reports which).
///  * kAuto: factoring when a Theorem 4.1-4.3 condition holds, otherwise
///    supplementary magic (the strongest always-applicable baseline).
///  * kMagic / kSupplementaryMagic / kCounting / kLinearRewrite: strict;
///    fail with kFailedPrecondition when the strategy does not apply.
Result<CompiledQuery> CompileQuery(const ast::Program& program,
                                   const ast::Atom& query,
                                   Strategy strategy = Strategy::kAuto,
                                   const PipelineOptions& opts = {});

struct PipelineResult {
  /// The program/query the pipeline actually compiled (after any static
  /// argument reduction).
  ast::Program source;
  ast::Atom source_query;
  bool static_reduction_applied = false;
  std::vector<int> reduced_positions;

  analysis::AdornedProgram adorned;
  transform::MagicProgram magic;
  ProgramClassification classification;
  FactorabilityReport factorability;

  bool factoring_applied = false;
  std::optional<FactoredProgram> factored;
  /// §5-optimized factored program (when optimizations ran).
  std::optional<ast::Program> optimized;

  /// Per-rule join plans for final_program() (join-plan pass output).
  plan::ProgramPlan plans;

  /// Lint warnings for the source program (lint errors reject compilation).
  std::vector<Diagnostic> diagnostics;

  /// Structured per-pass decision log (timings, rule counts, notes).
  std::vector<PassTraceEntry> trace;

  /// The most optimized program available: optimized, else factored, else
  /// the Magic program.
  const ast::Program& final_program() const {
    if (optimized.has_value()) return *optimized;
    if (factored.has_value()) return factored->program;
    return magic.program;
  }
  const ast::Atom& final_query() const {
    return factored.has_value() ? factored->query : magic.query;
  }
};

/// Runs the full paper pipeline. Always produces the Magic program;
/// factoring and the §5 cleanups apply only when one of the Theorems 4.1-4.3
/// conditions holds (reported in `factorability`). Equivalent to running the
/// kFactoring pass sequence and keeping every intermediate artifact.
Result<PipelineResult> OptimizeQuery(const ast::Program& program,
                                     const ast::Atom& query,
                                     const PipelineOptions& opts = {});

}  // namespace factlog::core

#endif  // FACTLOG_CORE_PIPELINE_H_
