#include "core/canonical.h"

#include <algorithm>
#include <set>

#include "ast/substitution.h"

namespace factlog::core {

namespace {

using ast::Atom;
using ast::Rule;
using ast::Term;

// Rendering with every variable replaced by "_": invariant under renaming.
std::string ShapeKey(const Term& t) {
  switch (t.kind()) {
    case Term::Kind::kVariable:
      return "_";
    case Term::Kind::kInt:
    case Term::Kind::kSymbol:
      return t.ToString();
    case Term::Kind::kCompound: {
      std::string out = t.symbol() + "(";
      for (size_t i = 0; i < t.args().size(); ++i) {
        if (i > 0) out += ",";
        out += ShapeKey(t.args()[i]);
      }
      return out + ")";
    }
  }
  return "?";
}

std::string ShapeKey(const Atom& a) {
  std::string out = a.predicate() + "(";
  for (size_t i = 0; i < a.arity(); ++i) {
    if (i > 0) out += ",";
    out += ShapeKey(a.args()[i]);
  }
  return out + ")";
}

Rule RenameVarsInOrder(const Rule& rule) {
  ast::Substitution subst;
  int counter = 0;
  for (const std::string& v : rule.DistinctVars()) {
    subst.Bind(v, Term::Var("V" + std::to_string(counter++)));
  }
  return subst.Apply(rule);
}

}  // namespace

ast::Rule CanonicalizeRule(const ast::Rule& rule) {
  Rule cur = rule;
  // Initial order: rename-invariant shape keys.
  std::stable_sort(cur.mutable_body()->begin(), cur.mutable_body()->end(),
                   [](const Atom& a, const Atom& b) {
                     return ShapeKey(a) < ShapeKey(b);
                   });
  // Iterate rename + full-string sort to a fixpoint (bounded).
  for (int round = 0; round < 4; ++round) {
    Rule renamed = RenameVarsInOrder(cur);
    std::stable_sort(renamed.mutable_body()->begin(),
                     renamed.mutable_body()->end(),
                     [](const Atom& a, const Atom& b) {
                       return a.ToString() < b.ToString();
                     });
    if (renamed == cur) break;
    cur = std::move(renamed);
  }
  return RenameVarsInOrder(cur);
}

ast::Program CanonicalizeProgram(const ast::Program& program) {
  std::vector<Rule> rules;
  rules.reserve(program.rules().size());
  for (const Rule& r : program.rules()) rules.push_back(CanonicalizeRule(r));
  std::sort(rules.begin(), rules.end(), [](const Rule& a, const Rule& b) {
    return a.ToString() < b.ToString();
  });
  rules.erase(std::unique(rules.begin(), rules.end()), rules.end());

  ast::Program out;
  for (Rule& r : rules) out.AddRule(std::move(r));
  if (program.query().has_value()) {
    ast::Substitution subst;
    int counter = 0;
    for (const std::string& v : program.query()->DistinctVars()) {
      subst.Bind(v, Term::Var("Q" + std::to_string(counter++)));
    }
    out.set_query(subst.Apply(*program.query()));
  }
  return out;
}

std::string CanonicalString(const ast::Program& program) {
  return CanonicalizeProgram(program).ToString();
}

ast::Program RenamePredicates(
    const ast::Program& program,
    const std::map<std::string, std::string>& renames) {
  auto rename_atom = [&renames](const Atom& a) {
    auto it = renames.find(a.predicate());
    return it == renames.end() ? a : Atom(it->second, a.args());
  };
  ast::Program out;
  for (const Rule& r : program.rules()) {
    std::vector<Atom> body;
    body.reserve(r.body().size());
    for (const Atom& b : r.body()) body.push_back(rename_atom(b));
    out.AddRule(Rule(rename_atom(r.head()), std::move(body)));
  }
  if (program.query().has_value()) {
    out.set_query(rename_atom(*program.query()));
  }
  return out;
}

bool StructurallyEqual(const ast::Program& a, const ast::Program& b,
                       const std::map<std::string, std::string>& renames) {
  return CanonicalString(RenamePredicates(a, renames)) == CanonicalString(b);
}

}  // namespace factlog::core
