#include "core/separable.h"

#include <algorithm>
#include <map>

namespace factlog::core {

namespace {

using ast::Atom;
using ast::Rule;

// Positions of `lit` whose variable occurs in some atom of `atoms`.
std::set<int> SharedPositions(const Atom& lit,
                              const std::vector<const Atom*>& atoms) {
  std::set<int> out;
  for (size_t i = 0; i < lit.arity(); ++i) {
    if (!lit.args()[i].IsVariable()) continue;
    const std::string& v = lit.args()[i].var_name();
    for (const Atom* a : atoms) {
      if (a->ContainsVar(v)) {
        out.insert(static_cast<int>(i));
        break;
      }
    }
  }
  return out;
}

// Variable name -> positions where it occurs in `lit` (variables only).
std::map<std::string, std::vector<int>> VarPositions(const Atom& lit) {
  std::map<std::string, std::vector<int>> out;
  for (size_t i = 0; i < lit.arity(); ++i) {
    if (lit.args()[i].IsVariable()) {
      out[lit.args()[i].var_name()].push_back(static_cast<int>(i));
    }
  }
  return out;
}

bool Disjoint(const std::set<int>& a, const std::set<int>& b) {
  return std::none_of(a.begin(), a.end(),
                      [&b](int x) { return b.count(x) > 0; });
}

// True when the atoms form at most one connected component under shared
// variables.
bool SingleComponent(const std::vector<const Atom*>& atoms) {
  if (atoms.size() <= 1) return true;
  std::vector<int> comp(atoms.size());
  for (size_t i = 0; i < atoms.size(); ++i) comp[i] = static_cast<int>(i);
  bool changed = true;
  auto shares = [](const Atom& a, const Atom& b) {
    std::vector<std::string> vars;
    a.CollectVars(&vars);
    return std::any_of(vars.begin(), vars.end(), [&b](const std::string& v) {
      return b.ContainsVar(v);
    });
  };
  while (changed) {
    changed = false;
    for (size_t i = 0; i < atoms.size(); ++i) {
      for (size_t j = i + 1; j < atoms.size(); ++j) {
        if (comp[i] != comp[j] && shares(*atoms[i], *atoms[j])) {
          int from = std::max(comp[i], comp[j]);
          int to = std::min(comp[i], comp[j]);
          for (int& c : comp) {
            if (c == from) c = to;
          }
          changed = true;
        }
      }
    }
  }
  return std::all_of(comp.begin(), comp.end(),
                     [&comp](int c) { return c == comp[0]; });
}

}  // namespace

Result<SeparabilityReport> CheckSeparable(const ast::Program& program,
                                          const std::string& pred) {
  SeparabilityReport report;
  report.linear = true;

  for (const Rule& rule : program.rules()) {
    if (rule.head().predicate() != pred) continue;
    std::vector<const Atom*> occurrences;
    std::vector<const Atom*> nonrecursive;
    for (const Atom& b : rule.body()) {
      if (b.predicate() == pred) {
        occurrences.push_back(&b);
      } else {
        nonrecursive.push_back(&b);
      }
    }
    if (occurrences.empty()) continue;  // exit rule
    if (occurrences.size() > 1) {
      report.linear = false;
      report.diagnostic = "rule is not linear: " + rule.ToString();
      return report;
    }
    const Atom& occ = *occurrences[0];

    // Definition 6.1: shifting variables.
    std::map<std::string, std::vector<int>> head_pos =
        VarPositions(rule.head());
    std::map<std::string, std::vector<int>> body_pos = VarPositions(occ);
    std::set<int> fixed;
    for (const auto& [var, hps] : head_pos) {
      auto it = body_pos.find(var);
      if (it == body_pos.end()) continue;
      for (int hp : hps) {
        for (int bp : it->second) {
          if (hp != bp) {
            report.diagnostic = "shifting variable " + var + " in rule: " +
                                rule.ToString();
            return report;
          }
          fixed.insert(hp);
        }
      }
    }

    report.head_shared.push_back(SharedPositions(rule.head(), nonrecursive));
    report.body_shared.push_back(SharedPositions(occ, nonrecursive));
    report.fixed_positions.push_back(std::move(fixed));

    // Definition 6.4 (4): the body must be one maximal connected set. The
    // connectivity includes the recursive occurrence (the canonical form
    // t(X,Y) :- A(X), t(X,W), B(W,Y) is connected only through t), so the
    // check is on the whole body.
    std::vector<const Atom*> whole_body = nonrecursive;
    whole_body.push_back(&occ);
    if (!SingleComponent(whole_body)) {
      report.diagnostic =
          "body atoms split into multiple connected sets in rule: " +
          rule.ToString();
      return report;
    }
  }

  // Definition 6.4 (2): t_i^h == t_i^b.
  for (size_t i = 0; i < report.head_shared.size(); ++i) {
    if (report.head_shared[i] != report.body_shared[i]) {
      report.diagnostic = "t^h != t^b for recursive rule " + std::to_string(i);
      return report;
    }
  }
  // Definition 6.4 (3): pairwise equal or disjoint.
  for (size_t i = 0; i < report.head_shared.size(); ++i) {
    for (size_t j = i + 1; j < report.head_shared.size(); ++j) {
      if (report.head_shared[i] != report.head_shared[j] &&
          !Disjoint(report.head_shared[i], report.head_shared[j])) {
        report.diagnostic = "t^h of rules " + std::to_string(i) + " and " +
                            std::to_string(j) + " overlap without being equal";
        return report;
      }
    }
  }
  report.separable = true;

  // Definition 6.6: reducible iff no fixed variable position lies in t_i^h.
  report.reducible = true;
  for (size_t i = 0; i < report.head_shared.size(); ++i) {
    if (!Disjoint(report.fixed_positions[i], report.head_shared[i])) {
      report.reducible = false;
      break;
    }
  }
  return report;
}

bool IsFullSelection(const SeparabilityReport& report, const ast::Atom& query) {
  if (!report.separable) return false;
  std::set<int> bound;
  for (size_t i = 0; i < query.arity(); ++i) {
    if (query.args()[i].IsGround()) bound.insert(static_cast<int>(i));
  }
  if (bound.empty() || bound.size() == query.arity()) return false;
  // The bound set must not cut any t_i^h group: each group is contained in
  // the bound set or disjoint from it.
  for (const std::set<int>& group : report.head_shared) {
    bool inside = std::all_of(group.begin(), group.end(),
                              [&bound](int p) { return bound.count(p) > 0; });
    if (!inside && !Disjoint(group, bound)) return false;
  }
  // Likewise it must not cut the fixed-position groups.
  for (const std::set<int>& group : report.fixed_positions) {
    bool inside = std::all_of(group.begin(), group.end(),
                              [&bound](int p) { return bound.count(p) > 0; });
    if (!inside && !Disjoint(group, bound)) return false;
  }
  return true;
}

}  // namespace factlog::core
