// One-sided recursions (§6.1, after [6], Theorems 6.1 and 6.2).
//
// A linear recursion is one-sided when only one "side" of the recursive
// predicate's arguments changes across recursive applications. The paper
// characterizes this via the full A/V (argument/variable) graph of [6]: only
// one connected component may contain a cycle of nonzero weight, and that
// component must have a cycle of weight 1 (Theorem 6.1).
//
// [6]'s full construction is not reproduced in the paper, so this module
// provides a documented reconstruction:
//   * nodes are the rule's variables;
//   * an undirected weight-0 edge joins variables co-occurring in a
//     nonrecursive body atom;
//   * a directed weight-1 edge joins the head variable at position k to the
//     body-occurrence variable at position k (one recursive application
//     moves the value);
//   * a component has a nonzero-weight cycle iff potential assignment along
//     the edges is inconsistent; the gcd of all inconsistencies is the
//     minimum cycle weight. "Has a cycle of weight 1" becomes gcd == 1.
//
// Independently, the *expansion* characterization the paper itself uses for
// Theorem 6.2 is implemented: a simple one-sided recursion can be expanded
// (substituting the rule into itself) until it takes form (1)
//     p(A, B) :- p(A, C), c(C, D, B)
// with disjoint variable vectors, i.e. one side persists verbatim.

#ifndef FACTLOG_CORE_ONE_SIDED_H_
#define FACTLOG_CORE_ONE_SIDED_H_

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "ast/program.h"
#include "ast/substitution.h"
#include "common/status.h"

namespace factlog::core {

/// Expands a linear recursive rule once: the body occurrence of `pred` is
/// resolved against a renamed copy of the rule itself.
Result<ast::Rule> ExpandRule(const ast::Rule& rule, const std::string& pred,
                             ast::FreshVarGen* gen);

/// A/V-graph analysis of one linear recursive rule.
struct AvGraphReport {
  struct Component {
    /// Argument positions whose head variable lies in this component.
    std::set<int> positions;
    /// Some cycle has nonzero weight (the component "moves").
    bool has_nonzero_cycle = false;
    /// gcd of all cycle weights (0 when no nonzero cycle).
    int64_t cycle_gcd = 0;
    /// Number of independent nonzero-weight cycles found.
    int nonzero_cycles = 0;
  };
  std::vector<Component> components;

  /// Theorem 6.1: exactly one component with a nonzero-weight cycle, and
  /// that component has a cycle of weight 1.
  bool IsOneSided() const;
  /// The stricter subclass used by Theorem 6.2: the moving component has
  /// exactly one nonzero cycle, of weight 1.
  bool IsSimpleOneSided() const;
};

/// Builds the A/V-graph report for a single linear recursive rule of `pred`.
Result<AvGraphReport> AnalyzeAvGraph(const ast::Rule& rule,
                                     const std::string& pred);

/// Result of the expansion characterization.
struct OneSidedForm {
  /// Number of self-expansions applied (0 = already in form (1)).
  int expansions = 0;
  /// The expanded rule in form (1).
  ast::Rule rule;
  /// Positions whose variable persists (the vector A).
  std::set<int> persistent_positions;
};

/// Tries to expand `rule` (up to `max_expansions` times) into form (1):
/// a single recursive occurrence whose variables at the persistent positions
/// equal the head's, with no nonrecursive atom touching those variables.
/// Returns nullopt when no expansion matches.
Result<std::optional<OneSidedForm>> FindOneSidedForm(const ast::Rule& rule,
                                                     const std::string& pred,
                                                     int max_expansions = 8);

}  // namespace factlog::core

#endif  // FACTLOG_CORE_ONE_SIDED_H_
