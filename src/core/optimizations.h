// The additional optimizations of §5.
//
// These cleanups run on the factored Magic program and, iterated to a
// fixpoint, produce the paper's final programs (e.g. the 4-rule unary
// transitive-closure program of Example 5.3):
//
//   * Proposition 5.1: delete a magic literal when a bp literal with
//     identical arguments is present (bp ⊆ magic).
//   * Proposition 5.2: delete an all-anonymous bp (fp) literal when an fp
//     (bp) literal is present — any bp succeeds iff any fp succeeds.
//   * Proposition 5.3: delete a bp literal whose arguments equal the query
//     seed when an fp literal is present.
//   * Proposition 5.4: delete rules whose head appears in their body, and
//     rules unreachable from the query.
//   * Proposition 5.5: anonymize variables occurring only once in a rule.
//   * Uniform-equivalence rule deletion [13]: a rule is redundant when the
//     remaining program derives its frozen head from its frozen body.
//
// Static argument reduction (Definitions 5.1/5.2, Lemmas 5.1/5.2) is also
// here: it rewrites a unit program whose recursion carries a bound argument
// unchanged, enabling classification of programs (e.g. pseudo-left-linear
// ones) that the §4 templates reject.

#ifndef FACTLOG_CORE_OPTIMIZATIONS_H_
#define FACTLOG_CORE_OPTIMIZATIONS_H_

#include <string>
#include <vector>

#include "ast/program.h"
#include "common/status.h"
#include "eval/seminaive.h"

namespace factlog::core {

/// Metadata threaded through the §5 passes.
struct OptimizationContext {
  /// The two factor predicates (empty when not applicable).
  std::string bp;
  std::string fp;
  /// The magic predicate whose arguments parallel bp's (Prop 5.1).
  std::string magic_pred;
  /// Ground arguments of the magic seed (Prop 5.3).
  std::vector<ast::Term> seed_args;
  /// Reachability root (Prop 5.4).
  std::string query_pred;
};

/// Order in which uniform-equivalence deletion scans rules. §7.4 of the
/// paper asks whether the order matters; the ablation benchmark compares
/// these.
enum class UeOrder { kForward, kBackward };

struct OptimizeOptions {
  bool apply_prop_5_1 = true;
  bool apply_prop_5_2 = true;
  bool apply_prop_5_3 = true;
  bool apply_head_in_body = true;     // Prop 5.4, first half
  bool apply_unreachable = true;      // Prop 5.4, second half
  bool apply_anonymize = true;        // Prop 5.5
  bool apply_duplicates = true;
  bool apply_uniform_equivalence = true;
  UeOrder ue_order = UeOrder::kForward;
  /// Budget for each uniform-equivalence chase.
  eval::EvalOptions ue_eval;
};

// ---- Individual passes (each returns true when it changed the program) ----

/// Prop 5.4a: delete rules whose head literal appears verbatim in the body.
bool DeleteHeadInBodyRules(ast::Program* program);

/// Prop 5.1: drop `magic(t)` from bodies that also contain `bp(t)`.
bool DeleteSubsumedMagicLiterals(ast::Program* program,
                                 const OptimizationContext& ctx);

/// Prop 5.2 (+ its symmetric form): drop all-singleton-variable bp literals
/// from bodies containing an fp literal, and vice versa.
bool DeleteAnonymousFactorLiterals(ast::Program* program,
                                   const OptimizationContext& ctx);

/// Prop 5.3: drop `bp(seed)` from bodies containing an fp literal.
bool DeleteSeedFactorLiterals(ast::Program* program,
                              const OptimizationContext& ctx);

/// Prop 5.4b: delete rules for predicates unreachable from the query.
bool DeleteUnreachableRules(ast::Program* program,
                            const std::string& query_pred);

/// Prop 5.5: rename variables that occur exactly once in their rule to
/// anonymous names (prefix "_"). Purely presentational but it feeds
/// Prop 5.2's "anonymous literal" condition.
bool AnonymizeSingletonVariables(ast::Program* program);

/// Deletes duplicate rules (equal up to variable renaming / body order).
bool DeleteDuplicateRules(ast::Program* program);

/// Uniform-equivalence rule deletion [13] via the frozen-body chase. Rules
/// containing builtins are skipped (conservative).
Result<bool> DeleteUniformlyRedundantRules(ast::Program* program,
                                           const OptimizeOptions& opts);

/// Runs all enabled passes to a fixpoint.
Result<ast::Program> OptimizeProgram(const ast::Program& program,
                                     const OptimizationContext& ctx,
                                     const OptimizeOptions& opts = {});

// ---- Static argument reduction (Definitions 5.1/5.2) ----

/// Positions of `pred` that are static in `program`: in every rule, every
/// body literal of `pred` carries the same variable there as the head.
/// Only positions bound by `query` qualify (the reduction substitutes the
/// query constant).
std::vector<int> FindStaticArguments(const ast::Program& program,
                                     const std::string& pred,
                                     const ast::Atom& query);

/// The subset of `static_positions` that violate the §4 templates: their
/// head variable occurs in a nonrecursive body atom together with a
/// variable that is not a bound head variable (Lemma 5.2's "bound arguments
/// that violate left-linearity", as in Example 5.2's pseudo-left-linear
/// rule).
std::vector<int> FindViolatingStaticArguments(
    const ast::Program& program, const std::string& pred,
    const ast::Atom& query, const std::vector<int>& static_positions);

/// Result of reducing a unit program with respect to static positions.
struct ReducedProgram {
  ast::Program program;
  ast::Atom query;
  /// The reduced predicate's new name.
  std::string predicate;
  /// Positions of the original predicate that were removed.
  std::vector<int> removed_positions;
};

/// Lemma 5.1: substitutes the query constants for the static positions and
/// drops those argument positions from `pred` everywhere. The reduced
/// predicate is renamed (paper's `s`).
Result<ReducedProgram> ReduceStaticArguments(const ast::Program& program,
                                             const std::string& pred,
                                             const ast::Atom& query,
                                             const std::vector<int>& positions);

}  // namespace factlog::core

#endif  // FACTLOG_CORE_OPTIMIZATIONS_H_
