#include "core/pipeline.h"

#include <utility>

namespace factlog::core {

namespace {

PassSequence MakeSequence(std::unique_ptr<Transform> pass) {
  PassSequence seq;
  seq.push_back(std::move(pass));
  return seq;
}

// Every compilation ends with the join-plan pass on the final program: the
// per-rule evaluation order, index requirements, and partitioning driver the
// engines consume. It runs outside the strategy sequences so a gracefully
// halted sequence (kFactoring's magic fallback) still gets its plan, and so
// PassesForStrategy keeps returning exactly the strategy's own passes.
Status AttachJoinPlan(TransformState* state, const PipelineOptions& opts) {
  FACTLOG_ASSIGN_OR_RETURN(
      bool completed,
      RunPasses(MakeSequence(MakeJoinPlanPass(opts.planner)), *state));
  (void)completed;
  return Status::OK();
}

// Every compilation opens with the lint pass: static safety / arity /
// stratification analysis over the source program. Lint errors reject the
// compilation right here with kInvalidArgument carrying the rendered
// diagnostics; warnings accumulate on state->diagnostics. Like the join-plan
// pass, it runs outside the strategy sequences so PassesForStrategy keeps
// returning exactly the strategy's own passes.
Status AttachLint(TransformState* state, const PipelineOptions& opts) {
  FACTLOG_ASSIGN_OR_RETURN(
      bool completed,
      RunPasses(MakeSequence(MakeLintPass(opts.lint)), *state));
  (void)completed;
  return Status::OK();
}

Result<CompiledQuery> FinishCompile(TransformState&& state, Strategy strategy,
                                    const PipelineOptions& opts);

// Runs `passes` on `state` with halts treated as errors and packages the
// result under the given strategy tag.
Result<CompiledQuery> RunStrict(TransformState state, PassSequence passes,
                                Strategy strategy,
                                const PipelineOptions& opts) {
  RunPassesOptions strict;
  strict.halt_is_error = true;
  FACTLOG_ASSIGN_OR_RETURN(bool completed, RunPasses(passes, state, strict));
  (void)completed;
  return FinishCompile(std::move(state), strategy, opts);
}

// Packages the state a completed pass sequence left behind.
Result<CompiledQuery> FinishCompile(TransformState&& state, Strategy strategy,
                                    const PipelineOptions& opts) {
  FACTLOG_RETURN_IF_ERROR(AttachJoinPlan(&state, opts));
  CompiledQuery out;
  out.strategy = strategy;
  out.program = state.final_program();
  out.query = state.final_query();
  out.program.set_query(out.query);
  out.factoring_applied = state.factoring_applied;
  out.static_reduction_applied = state.static_reduction_applied;
  out.factor_class = state.factorability.has_value()
                         ? state.factorability->cls
                         : FactorClass::kNotFactorable;
  if (state.plans.has_value()) out.plans = std::move(*state.plans);
  // Record the extents the plans were costed against, restricted to the
  // predicates the final program mentions — the stale-plan guard's baseline.
  for (const ast::Rule& rule : out.program.rules()) {
    for (const ast::Atom& body : rule.body()) {
      auto it = opts.planner.extent_hints.find(body.predicate());
      if (it != opts.planner.extent_hints.end()) {
        out.planner_hints[it->first] = it->second;
      }
    }
  }
  out.source = std::move(state.source);
  out.source_query = std::move(state.source_query);
  out.diagnostics = std::move(state.diagnostics);
  out.trace = std::move(state.trace);
  return out;
}

}  // namespace

PassSequence PassesForStrategy(Strategy strategy, const PipelineOptions& opts) {
  PassSequence seq;
  switch (strategy) {
    case Strategy::kAuto:
    case Strategy::kFactoring:
      seq.push_back(MakeAdornPass());
      seq.push_back(MakeClassifyPass());
      seq.push_back(MakeNormalizePass(opts.try_static_reduction));
      seq.push_back(MakeMagicPass());
      seq.push_back(MakeFactorabilityGatePass());
      seq.push_back(MakeFactoringPass());
      if (opts.apply_optimizations) {
        seq.push_back(MakeSectionFiveFixpointPass(opts.optimize));
      }
      break;
    case Strategy::kMagic:
      seq.push_back(MakeAdornPass());
      seq.push_back(MakeMagicPass());
      break;
    case Strategy::kSupplementaryMagic:
      seq.push_back(MakeAdornPass());
      seq.push_back(MakeSupplementaryMagicPass());
      break;
    case Strategy::kCounting:
      seq.push_back(MakeAdornPass());
      seq.push_back(MakeClassifyPass());
      seq.push_back(MakeCountingPass());
      break;
    case Strategy::kLinearRewrite:
      seq.push_back(MakeAdornPass());
      seq.push_back(MakeClassifyPass());
      seq.push_back(MakeLinearRewritePass());
      break;
  }
  return seq;
}

Result<CompiledQuery> CompileQuery(const ast::Program& program,
                                   const ast::Atom& query, Strategy strategy,
                                   const PipelineOptions& opts) {
  TransformState state;
  state.source = program;
  state.source_query = query;
  // Mandatory opening pass: lint errors reject the compilation before any
  // strategy (including the kAuto fallbacks) runs.
  FACTLOG_RETURN_IF_ERROR(AttachLint(&state, opts));

  if (strategy == Strategy::kAuto) {
    // Try the paper pipeline first; when factoring does not apply (or the
    // program falls outside the §4 templates entirely), fall back to
    // supplementary magic.
    Result<bool> ran =
        RunPasses(PassesForStrategy(Strategy::kFactoring, opts), state);
    if (ran.ok() && state.factoring_applied) {
      return FinishCompile(std::move(state), Strategy::kFactoring, opts);
    }
    if (ran.ok()) {
      // Keep the factoring attempt's trace (it records why factoring was
      // rejected) and continue on the same state: the adorned program is
      // already available.
      return RunStrict(std::move(state),
                       MakeSequence(MakeSupplementaryMagicPass()),
                       Strategy::kSupplementaryMagic, opts);
    }
    // The factoring pipeline failed outright (e.g. not a unit program, so
    // classification errored); record why and compile supplementary magic
    // from scratch, carrying the lint verdict (trace entry + warnings) over
    // so the fallback's artifact still reports it.
    TransformState fallback;
    fallback.source = program;
    fallback.source_query = query;
    fallback.diagnostics = std::move(state.diagnostics);
    if (!state.trace.empty() && state.trace.front().pass == "lint") {
      fallback.trace.push_back(std::move(state.trace.front()));
    }
    PassTraceEntry note;
    note.pass = "auto-fallback";
    note.notes.push_back("factoring pipeline failed: " +
                         ran.status().ToString());
    fallback.trace.push_back(std::move(note));
    return RunStrict(std::move(fallback),
                     PassesForStrategy(Strategy::kSupplementaryMagic, opts),
                     Strategy::kSupplementaryMagic, opts);
  }

  RunPassesOptions run_opts;
  // kFactoring keeps the paper's graceful Magic fallback; every other
  // concrete strategy either applies or fails.
  run_opts.halt_is_error = (strategy != Strategy::kFactoring);
  FACTLOG_ASSIGN_OR_RETURN(
      bool completed,
      RunPasses(PassesForStrategy(strategy, opts), state, run_opts));
  (void)completed;
  return FinishCompile(std::move(state), strategy, opts);
}

Result<PipelineResult> OptimizeQuery(const ast::Program& program,
                                     const ast::Atom& query,
                                     const PipelineOptions& opts) {
  TransformState state;
  state.source = program;
  state.source_query = query;
  FACTLOG_RETURN_IF_ERROR(AttachLint(&state, opts));
  FACTLOG_ASSIGN_OR_RETURN(
      bool completed,
      RunPasses(PassesForStrategy(Strategy::kFactoring, opts), state));
  (void)completed;
  FACTLOG_RETURN_IF_ERROR(AttachJoinPlan(&state, opts));

  if (!state.adorned.has_value() || !state.classification.has_value() ||
      !state.magic.has_value()) {
    return Status::Internal(
        "factoring pass sequence ended without adorned/classified/magic "
        "artifacts");
  }
  PipelineResult out;
  out.source = std::move(state.source);
  out.source_query = std::move(state.source_query);
  out.static_reduction_applied = state.static_reduction_applied;
  out.reduced_positions = std::move(state.reduced_positions);
  out.adorned = std::move(*state.adorned);
  out.magic = std::move(*state.magic);
  out.classification = std::move(*state.classification);
  if (state.factorability.has_value()) {
    out.factorability = std::move(*state.factorability);
  }
  out.factoring_applied = state.factoring_applied;
  out.factored = std::move(state.factored);
  out.optimized = std::move(state.optimized);
  if (state.plans.has_value()) out.plans = std::move(*state.plans);
  out.diagnostics = std::move(state.diagnostics);
  out.trace = std::move(state.trace);
  return out;
}

}  // namespace factlog::core
