#include "core/pipeline.h"

#include <algorithm>
#include <numeric>
#include <set>

namespace factlog::core {

namespace {

// Adorns and classifies one (program, query) pair.
struct Attempt {
  analysis::AdornedProgram adorned;
  ProgramClassification classification;
};

Result<Attempt> TryClassify(const ast::Program& program,
                            const ast::Atom& query) {
  Attempt a;
  FACTLOG_ASSIGN_OR_RETURN(a.adorned, analysis::Adorn(program, query));
  FACTLOG_ASSIGN_OR_RETURN(a.classification, ClassifyProgram(a.adorned));
  return a;
}

void BindAtomVars(const ast::Atom& atom, std::set<std::string>* bound) {
  std::vector<std::string> vars;
  atom.CollectVars(&vars);
  bound->insert(vars.begin(), vars.end());
}

void BindTermVars(const ast::Term& term, std::set<std::string>* bound) {
  std::vector<std::string> vars;
  term.CollectVars(&vars);
  bound->insert(vars.begin(), vars.end());
}

bool AtomPatternMatches(const ast::Atom& atom,
                        const analysis::Adornment& target,
                        const std::set<std::string>& bound) {
  for (size_t i = 0; i < atom.arity(); ++i) {
    std::vector<std::string> vars;
    atom.args()[i].CollectVars(&vars);
    bool is_bound =
        atom.args()[i].IsGround() ||
        std::all_of(vars.begin(), vars.end(), [&](const std::string& v) {
          return bound.count(v) > 0;
        });
    if (is_bound != target.IsBound(i)) return false;
  }
  return true;
}

// Searches for a body order under which every occurrence of `pred` receives
// exactly the adornment `target` (left-to-right SIP simulation). Returns
// the reordered body, or nullopt. The paper's classification is explicitly
// "up to ... reordering of predicate instances in the body" (§4.1); the
// as-written order can over-bind an occurrence (e.g. t(X,9) on right-linear
// transitive closure binds W through e(X,W) before reaching t(W,Y)).
std::optional<std::vector<ast::Atom>> FindUnitBodyOrder(
    const ast::Rule& rule, const std::string& pred,
    const analysis::Adornment& target) {
  const std::vector<ast::Atom>& body = rule.body();
  if (body.size() > 8) return std::nullopt;  // permutation search bound

  std::set<std::string> initial_bound;
  for (size_t i = 0; i < rule.head().arity(); ++i) {
    if (target.IsBound(i)) BindTermVars(rule.head().args()[i], &initial_bound);
  }

  std::vector<int> perm(body.size());
  std::iota(perm.begin(), perm.end(), 0);
  do {
    std::set<std::string> bound = initial_bound;
    bool ok = true;
    for (int idx : perm) {
      const ast::Atom& lit = body[idx];
      if (lit.predicate() == pred) {
        if (lit.arity() != target.arity() ||
            !AtomPatternMatches(lit, target, bound)) {
          ok = false;
          break;
        }
      }
      BindAtomVars(lit, &bound);
    }
    if (ok) {
      std::vector<ast::Atom> out;
      out.reserve(body.size());
      for (int idx : perm) out.push_back(body[idx]);
      return out;
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
  return std::nullopt;
}

// Reorders rule bodies of the query predicate so each recursive occurrence
// adorns exactly like the query. Rules with no such order keep their
// original body.
ast::Program ReorderForUnitAdornment(const ast::Program& program,
                                     const ast::Atom& query, bool* changed) {
  analysis::Adornment target = analysis::Adornment::ForQuery(query);
  ast::Program out;
  *changed = false;
  for (const ast::Rule& rule : program.rules()) {
    if (rule.head().predicate() != query.predicate()) {
      out.AddRule(rule);
      continue;
    }
    std::optional<std::vector<ast::Atom>> reordered =
        FindUnitBodyOrder(rule, query.predicate(), target);
    if (reordered.has_value() && *reordered != rule.body()) {
      *changed = true;
      out.AddRule(ast::Rule(rule.head(), std::move(*reordered)));
    } else {
      out.AddRule(rule);
    }
  }
  if (program.query().has_value()) out.set_query(*program.query());
  return out;
}

}  // namespace

Result<PipelineResult> OptimizeQuery(const ast::Program& program,
                                     const ast::Atom& query,
                                     const PipelineOptions& opts) {
  PipelineResult out;
  out.source = program;
  out.source_query = query;

  FACTLOG_ASSIGN_OR_RETURN(Attempt attempt, TryClassify(program, query));
  out.trace.push_back("adorned query predicate: " +
                      attempt.adorned.query_predicate().Name());

  // When the as-written program is not RLC-stable, retry with body
  // reordering (the §4.1 "reordering of predicate instances") and with
  // static argument reduction (Lemmas 5.1/5.2), in that order.
  if (!attempt.classification.rlc_stable) {
    bool reordered_changed = false;
    ast::Program reordered =
        ReorderForUnitAdornment(program, query, &reordered_changed);
    if (reordered_changed) {
      auto retry = TryClassify(reordered, query);
      if (retry.ok() && retry->classification.rlc_stable) {
        out.trace.push_back("body literals reordered for a unit adornment");
        out.source = reordered;
        attempt = std::move(retry).value();
      }
    }
  }

  if (!attempt.classification.rlc_stable && opts.try_static_reduction) {
    std::vector<int> static_args =
        FindStaticArguments(program, query.predicate(), query);
    // Candidate position sets, per Lemma 5.2: first the static positions
    // that violate the §4 templates, then all static positions, then each
    // singleton.
    std::vector<std::vector<int>> candidates;
    std::vector<int> violating = FindViolatingStaticArguments(
        program, query.predicate(), query, static_args);
    if (!violating.empty()) candidates.push_back(violating);
    if (!static_args.empty()) candidates.push_back(static_args);
    for (int p : static_args) candidates.push_back({p});
    for (const std::vector<int>& positions : candidates) {
      auto reduced = ReduceStaticArguments(program, query.predicate(), query,
                                           positions);
      if (!reduced.ok()) continue;
      // The reduced program may itself need reordering.
      bool ignored = false;
      ast::Program reduced_reordered =
          ReorderForUnitAdornment(reduced->program, reduced->query, &ignored);
      auto retry = TryClassify(reduced_reordered, reduced->query);
      if (retry.ok() && retry->classification.rlc_stable) {
        out.trace.push_back(
            "static argument reduction applied (Lemma 5.1/5.2) on " +
            std::to_string(positions.size()) + " position(s)");
        out.source = reduced_reordered;
        out.source_query = reduced->query;
        out.static_reduction_applied = true;
        out.reduced_positions = positions;
        attempt = std::move(retry).value();
        break;
      }
    }
  }

  out.adorned = std::move(attempt.adorned);
  out.classification = std::move(attempt.classification);
  for (const RuleShape& s : out.classification.shapes) {
    out.trace.push_back("rule " + std::to_string(s.rule_index) + ": " +
                        RuleShapeKindToString(s.kind) +
                        (s.diagnostic.empty() ? "" : " (" + s.diagnostic + ")"));
  }

  FACTLOG_ASSIGN_OR_RETURN(out.magic, transform::MagicSets(out.adorned));
  out.trace.push_back("magic program has " +
                      std::to_string(out.magic.program.rules().size()) +
                      " rules");

  if (!out.classification.rlc_stable) {
    out.trace.push_back("not RLC-stable: " + out.classification.diagnostic);
    return out;
  }

  FACTLOG_ASSIGN_OR_RETURN(out.factorability,
                           CheckFactorability(out.classification));
  out.trace.push_back(std::string("factorability: ") +
                      FactorClassToString(out.factorability.cls));
  if (!out.factorability.factorable()) {
    for (const std::string& f : out.factorability.failures) {
      out.trace.push_back("  " + f);
    }
    return out;
  }

  // Factor p^a into bp(bound args) and fp(free args) in the Magic program
  // (Theorems 4.1-4.3).
  const analysis::AdornedPredicate& ap =
      out.adorned.predicates().begin()->second;
  FactorSplit split;
  split.predicate = ap.Name();
  split.part1 = ap.adornment.BoundPositions();
  split.part2 = ap.adornment.FreePositions();
  split.name1 = "b" + ap.base;
  split.name2 = "f" + ap.base;
  FACTLOG_ASSIGN_OR_RETURN(
      FactoredProgram factored,
      FactorTransform(out.magic.program, out.magic.query, split));
  out.factored = std::move(factored);
  out.factoring_applied = true;
  out.trace.push_back("factored " + split.predicate + " into " +
                      out.factored->split.name1 + "(bound) and " +
                      out.factored->split.name2 + "(free)");

  if (opts.apply_optimizations) {
    OptimizationContext ctx;
    ctx.bp = out.factored->split.name1;
    ctx.fp = out.factored->split.name2;
    ctx.magic_pred = out.magic.magic_names.at(split.predicate);
    ctx.seed_args = out.magic.seed.args();
    ctx.query_pred = out.factored->query.predicate();
    FACTLOG_ASSIGN_OR_RETURN(
        ast::Program optimized,
        OptimizeProgram(out.factored->program, ctx, opts.optimize));
    optimized.set_query(out.factored->query);
    out.trace.push_back("after §5 optimizations: " +
                        std::to_string(optimized.rules().size()) + " rules");
    out.optimized = std::move(optimized);
  }
  return out;
}

}  // namespace factlog::core
