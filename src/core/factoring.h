// The factoring transformation (§3, Proposition 3.1).
//
// Factoring p(X1, ..., Xn) into p1(X_i1, ..., X_ik) and p2(X_j1, ..., X_jl)
// replaces every body literal p(t) by the pair p1(t|part1), p2(t|part2) and
// every rule with head p(t) by two rules with heads p1(t|part1) and
// p2(t|part2). The result contains no p; both new predicates have strictly
// lower arity — the arity reduction that motivates the paper.
//
// Whether the transformation preserves the query answers is exactly the
// factoring property, which is undecidable in general (Theorem 3.1); callers
// establish it via core/factorability.h or falsify it via
// eval/equivalence.h.

#ifndef FACTLOG_CORE_FACTORING_H_
#define FACTLOG_CORE_FACTORING_H_

#include <string>
#include <vector>

#include "ast/program.h"
#include "common/status.h"

namespace factlog::core {

/// A (nontrivial) split of a predicate's argument positions.
struct FactorSplit {
  std::string predicate;
  std::vector<int> part1;  // strictly increasing positions
  std::vector<int> part2;
  std::string name1;       // predicate name for part1 (e.g. "bt")
  std::string name2;       // predicate name for part2 (e.g. "ft")
};

/// Result of the factoring transformation.
struct FactoredProgram {
  ast::Program program;
  /// The rewritten query atom. When the original query was on the factored
  /// predicate, a fresh rule `query(vars) :- p1(...), p2(...)` is added and
  /// the query becomes `query(vars)`.
  ast::Atom query;
  FactorSplit split;
};

/// Applies the factoring transformation. `split.part1`/`part2` must be a
/// disjoint, covering, nontrivial partition of the predicate's positions.
/// `name1`/`name2` (and the query rule's predicate) are uniquified against
/// names already used in the program.
Result<FactoredProgram> FactorTransform(const ast::Program& program,
                                        const ast::Atom& query,
                                        const FactorSplit& split);

}  // namespace factlog::core

#endif  // FACTLOG_CORE_FACTORING_H_
