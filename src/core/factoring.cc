#include "core/factoring.h"

#include <algorithm>
#include <set>

namespace factlog::core {

namespace {

using ast::Atom;
using ast::Rule;
using ast::Term;

std::vector<Term> Project(const Atom& atom, const std::vector<int>& positions) {
  std::vector<Term> out;
  out.reserve(positions.size());
  for (int p : positions) out.push_back(atom.args()[p]);
  return out;
}

std::string MakeUnique(std::string name, const std::set<std::string>& taken) {
  while (taken.count(name) > 0) name += "_";
  return name;
}

}  // namespace

Result<FactoredProgram> FactorTransform(const ast::Program& program,
                                        const ast::Atom& query,
                                        const FactorSplit& split) {
  // Validate the split: disjoint, covering, nontrivial, in range.
  auto arities = program.PredicateArities();
  auto arity_it = arities.find(split.predicate);
  if (arity_it == arities.end()) {
    return Status::NotFound("predicate '" + split.predicate +
                            "' does not occur in the program");
  }
  size_t arity = arity_it->second;
  std::set<int> seen;
  for (const std::vector<int>* part : {&split.part1, &split.part2}) {
    for (int p : *part) {
      if (p < 0 || static_cast<size_t>(p) >= arity) {
        return Status::Invalid("split position " + std::to_string(p) +
                               " out of range for arity " +
                               std::to_string(arity));
      }
      if (!seen.insert(p).second) {
        return Status::Invalid("split parts are not disjoint at position " +
                               std::to_string(p));
      }
    }
  }
  if (seen.size() != arity) {
    return Status::Invalid("split does not cover every argument position");
  }
  if (split.part1.empty() || split.part2.empty()) {
    return Status::Invalid(
        "trivial factoring: one part holds all argument positions");
  }

  // Uniquify the new predicate names.
  std::set<std::string> taken;
  for (const auto& [name, a] : arities) taken.insert(name);
  FactorSplit actual = split;
  actual.name1 = MakeUnique(split.name1, taken);
  taken.insert(actual.name1);
  actual.name2 = MakeUnique(split.name2, taken);
  taken.insert(actual.name2);

  FactoredProgram out;
  out.split = actual;

  auto rewrite_body = [&](const std::vector<Atom>& body) {
    std::vector<Atom> new_body;
    new_body.reserve(body.size());
    for (const Atom& lit : body) {
      if (lit.predicate() == actual.predicate) {
        new_body.emplace_back(actual.name1, Project(lit, actual.part1));
        new_body.emplace_back(actual.name2, Project(lit, actual.part2));
      } else {
        new_body.push_back(lit);
      }
    }
    return new_body;
  };

  for (const Rule& rule : program.rules()) {
    std::vector<Atom> body = rewrite_body(rule.body());
    if (rule.head().predicate() == actual.predicate) {
      out.program.AddRule(
          Rule(Atom(actual.name1, Project(rule.head(), actual.part1)), body));
      out.program.AddRule(
          Rule(Atom(actual.name2, Project(rule.head(), actual.part2)),
               std::move(body)));
    } else {
      out.program.AddRule(Rule(rule.head(), std::move(body)));
    }
  }

  if (query.predicate() == actual.predicate) {
    // query(vars) :- p1(...), p2(...).
    std::string qname = MakeUnique("query", taken);
    std::vector<Term> qargs;
    for (const std::string& v : query.DistinctVars()) {
      qargs.push_back(Term::Var(v));
    }
    Atom qhead(qname, qargs);
    out.program.AddRule(Rule(qhead, rewrite_body({query})));
    out.query = qhead;
  } else {
    out.query = query;
  }
  out.program.set_query(out.query);
  return out;
}

}  // namespace factlog::core
