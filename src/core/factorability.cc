#include "core/factorability.h"

namespace factlog::core {

namespace {

using analysis::ConjunctiveQuery;

// Appends a failure message and returns false (for condition chaining).
bool Fail(std::vector<std::string>* failures, const std::string& msg) {
  failures->push_back(msg);
  return false;
}

std::string RuleRef(const RuleShape& s) {
  return "rule " + std::to_string(s.rule_index) + " (" +
         std::string(RuleShapeKindToString(s.kind)) + ")";
}

// Definition 4.6: selection-pushing.
bool CheckSelectionPushing(const ProgramClassification& c,
                           std::vector<std::string>* failures) {
  const RuleShape* exit = c.ExitShape();
  bool ok = true;
  // Condition 1: free_exit ⊆ free for every combined or right-linear rule.
  for (const RuleShape& s : c.shapes) {
    if (s.kind != RuleShape::Kind::kCombined &&
        s.kind != RuleShape::Kind::kRightLinear) {
      continue;
    }
    if (!exit->free_exit->ContainedIn(*s.free_q)) {
      ok = Fail(failures, "selection-pushing: free_exit " +
                              exit->free_exit->ToString() +
                              " not contained in free of " + RuleRef(s));
    }
  }
  // Condition 2: all "left" conjunctions pairwise equivalent; every
  // bound_first contained in every "left".
  const ConjunctiveQuery* left = nullptr;
  const RuleShape* left_rule = nullptr;
  for (const RuleShape& s : c.shapes) {
    if (!s.bound_q.has_value()) continue;
    if (left == nullptr) {
      left = &*s.bound_q;
      left_rule = &s;
      continue;
    }
    if (!left->EquivalentTo(*s.bound_q)) {
      ok = Fail(failures, "selection-pushing: left conjunction of " +
                              RuleRef(s) + " not equivalent to left of " +
                              RuleRef(*left_rule));
    }
  }
  if (left != nullptr) {
    for (const RuleShape& s : c.shapes) {
      if (!s.bound_first.has_value()) continue;
      if (!s.bound_first->ContainedIn(*left)) {
        ok = Fail(failures, "selection-pushing: bound_first of " + RuleRef(s) +
                                " not contained in the left conjunction");
      }
    }
  }
  return ok;
}

// Definition 4.7: symmetric.
bool CheckSymmetric(const ProgramClassification& c,
                    std::vector<std::string>* failures) {
  const RuleShape* exit = c.ExitShape();
  bool ok = true;
  const ConjunctiveQuery* middle = nullptr;
  const RuleShape* middle_rule = nullptr;
  for (const RuleShape& s : c.shapes) {
    if (s.kind == RuleShape::Kind::kExit) continue;
    if (s.kind != RuleShape::Kind::kCombined) {
      return Fail(failures, "symmetric: " + RuleRef(s) +
                                " is recursive but not combined");
    }
    if (!exit->free_exit->ContainedIn(*s.free_q)) {
      ok = Fail(failures, "symmetric: free_exit not contained in free of " +
                              RuleRef(s));
    }
    if (middle == nullptr) {
      middle = &*s.middle;
      middle_rule = &s;
    } else if (!middle->EquivalentTo(*s.middle)) {
      ok = Fail(failures, "symmetric: middle of " + RuleRef(s) +
                              " not equivalent to middle of " +
                              RuleRef(*middle_rule));
    }
  }
  return ok;
}

// Definition 4.8: answer-propagating.
bool CheckAnswerPropagating(const ProgramClassification& c,
                            std::vector<std::string>* failures) {
  const RuleShape* exit = c.ExitShape();
  bool ok = true;
  // Per-rule conditions.
  for (const RuleShape& s : c.shapes) {
    switch (s.kind) {
      case RuleShape::Kind::kLeftLinear:
        if (!exit->bound_exit->ContainedIn(*s.bound_q)) {
          ok = Fail(failures,
                    "answer-propagating: bound_exit not contained in bound "
                    "of " + RuleRef(s));
        }
        break;
      case RuleShape::Kind::kRightLinear:
      case RuleShape::Kind::kCombined:
        if (!exit->free_exit->ContainedIn(*s.free_q)) {
          ok = Fail(failures,
                    "answer-propagating: free_exit not contained in free "
                    "of " + RuleRef(s));
        }
        break;
      default:
        break;
    }
  }
  // Pairwise conditions.
  for (const RuleShape& a : c.shapes) {
    for (const RuleShape& b : c.shapes) {
      if (a.rule_index == b.rule_index) continue;
      // Combined pairs: middles equivalent (each unordered pair is visited
      // twice; equivalence is symmetric so the duplicate test is harmless).
      if (a.kind == RuleShape::Kind::kCombined &&
          b.kind == RuleShape::Kind::kCombined && a.rule_index < b.rule_index) {
        if (!a.middle->EquivalentTo(*b.middle)) {
          ok = Fail(failures, "answer-propagating: middles of " + RuleRef(a) +
                                  " and " + RuleRef(b) + " not equivalent");
        }
      }
      // (left-linear l, combined c): bound_l ⊆ bound_c, free_last_l ⊆ free_c.
      if (a.kind == RuleShape::Kind::kLeftLinear &&
          b.kind == RuleShape::Kind::kCombined) {
        if (!a.bound_q->ContainedIn(*b.bound_q)) {
          ok = Fail(failures, "answer-propagating: bound of " + RuleRef(a) +
                                  " not contained in bound of " + RuleRef(b));
        }
        if (!a.free_last->ContainedIn(*b.free_q)) {
          ok = Fail(failures, "answer-propagating: free_last of " +
                                  RuleRef(a) + " not contained in free of " +
                                  RuleRef(b));
        }
      }
      // (right-linear r, combined c): bound_first_r ⊆ bound_c.
      if (a.kind == RuleShape::Kind::kRightLinear &&
          b.kind == RuleShape::Kind::kCombined) {
        if (!a.bound_first->ContainedIn(*b.bound_q)) {
          ok = Fail(failures, "answer-propagating: bound_first of " +
                                  RuleRef(a) + " not contained in bound of " +
                                  RuleRef(b));
        }
      }
      // (right-linear r, left-linear l): bound_first_r ⊆ bound_l and
      // free_last_l ⊆ free_r.
      if (a.kind == RuleShape::Kind::kRightLinear &&
          b.kind == RuleShape::Kind::kLeftLinear) {
        if (!a.bound_first->ContainedIn(*b.bound_q)) {
          ok = Fail(failures, "answer-propagating: bound_first of " +
                                  RuleRef(a) + " not contained in bound of " +
                                  RuleRef(b));
        }
        if (!b.free_last->ContainedIn(*a.free_q)) {
          ok = Fail(failures, "answer-propagating: free_last of " +
                                  RuleRef(b) + " not contained in free of " +
                                  RuleRef(a));
        }
      }
    }
  }
  return ok;
}

}  // namespace

const char* FactorClassToString(FactorClass cls) {
  switch (cls) {
    case FactorClass::kNotFactorable:
      return "not factorable (no sufficient condition holds)";
    case FactorClass::kSelectionPushing:
      return "selection-pushing";
    case FactorClass::kSymmetric:
      return "symmetric";
    case FactorClass::kAnswerPropagating:
      return "answer-propagating";
  }
  return "?";
}

Result<FactorabilityReport> CheckFactorability(
    const ProgramClassification& classification) {
  if (!classification.rlc_stable) {
    return Status::FailedPrecondition(
        "factorability tests require an RLC-stable program: " +
        classification.diagnostic);
  }
  FactorabilityReport report;
  report.selection_pushing =
      CheckSelectionPushing(classification, &report.failures);
  report.symmetric = CheckSymmetric(classification, &report.failures);
  report.answer_propagating =
      CheckAnswerPropagating(classification, &report.failures);
  if (report.selection_pushing) {
    report.cls = FactorClass::kSelectionPushing;
  } else if (report.symmetric) {
    report.cls = FactorClass::kSymmetric;
  } else if (report.answer_propagating) {
    report.cls = FactorClass::kAnswerPropagating;
  }
  return report;
}

}  // namespace factlog::core
