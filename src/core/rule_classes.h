// Rule classification for RLC-stable programs (Definitions 4.1-4.5).
//
// Works on the adorned unit program P^ad. Each rule is brought into standard
// form with respect to the recursive predicate and classified as an exit,
// left-linear, right-linear, or combined rule. Classification is positional
// against the adornment: a body occurrence of p^a is
//   * left-linear  when its bound-position variables equal the head's
//     bound-position variables pointwise, and
//   * right-linear when its free-position variables equal the head's
//     free-position variables pointwise.
// This criterion is invariant under the global argument permutations the
// paper allows (Example 4.1 permutes t^{bfb} into an explicitly left-linear
// form; both classify identically here).
//
// The EDB atoms of a classified rule are split into the Definition 4.5
// conjunctions (left/first/last/center/right) by connected components of
// shared variables; a component touching both the bound side and the free
// side violates the template (for left-linear rules this is exactly the
// pseudo-left-linear case of Definition 5.3, reported as such so the static
// argument reduction of Lemma 5.2 can be tried).

#ifndef FACTLOG_CORE_RULE_CLASSES_H_
#define FACTLOG_CORE_RULE_CLASSES_H_

#include <optional>
#include <string>
#include <vector>

#include "analysis/adornment.h"
#include "analysis/cq.h"
#include "common/status.h"

namespace factlog::core {

/// One occurrence of the recursive predicate in a rule body.
struct OccurrenceInfo {
  int body_index = -1;
  bool left = false;
  bool right = false;
  std::vector<std::string> bound_vars;
  std::vector<std::string> free_vars;
};

/// Classification of one rule plus its Definition 4.5 conjunctions.
struct RuleShape {
  enum class Kind {
    kExit,
    kLeftLinear,
    kRightLinear,
    kCombined,
    kPseudoLeftLinear,  // Def 5.3: left and last share variables
    kUnclassified,
  };

  Kind kind = Kind::kUnclassified;
  int rule_index = -1;
  /// The adorned rule in standard form w.r.t. the recursive predicate.
  ast::Rule standard_rule;
  std::vector<OccurrenceInfo> occurrences;

  // Definition 4.5 conjunctions; only those applicable to `kind` are set.
  std::optional<analysis::ConjunctiveQuery> bound_exit;   // exit rule
  std::optional<analysis::ConjunctiveQuery> free_exit;    // exit rule
  std::optional<analysis::ConjunctiveQuery> bound_q;      // "bound" (left conj)
  std::optional<analysis::ConjunctiveQuery> free_q;       // "free" (right conj)
  std::optional<analysis::ConjunctiveQuery> bound_first;  // right-linear
  std::optional<analysis::ConjunctiveQuery> free_last;    // left-linear
  std::optional<analysis::ConjunctiveQuery> middle;       // combined

  std::string diagnostic;

  bool IsRecursive() const { return !occurrences.empty(); }
};

/// Classification of a whole adorned program (Definition 4.4).
struct ProgramClassification {
  /// Single IDB predicate with a single reachable adornment.
  bool unit_program = false;
  /// All rules classified, exactly one exit rule.
  bool rlc_stable = false;
  /// Name of the (single) adorned recursive predicate.
  std::string predicate;
  analysis::Adornment adornment;
  int exit_rule_index = -1;
  int exit_rule_count = 0;
  std::vector<RuleShape> shapes;
  std::string diagnostic;

  const RuleShape* ExitShape() const {
    return exit_rule_index >= 0 ? &shapes[exit_rule_index] : nullptr;
  }
};

/// Classifies every rule of the adorned program. Fails with
/// kFailedPrecondition when the program is not a unit program or the query
/// adornment has no bound or no free positions (factoring would be trivial).
Result<ProgramClassification> ClassifyProgram(
    const analysis::AdornedProgram& adorned);

/// Classifies an explicit rule set as the definition of the adorned
/// predicate `pred` (used by §7.3 non-unit factoring, where `pred` is not
/// the query predicate). The rules must all have head `pred`; bodies may
/// reference `pred` and EDB predicates only.
Result<ProgramClassification> ClassifyRules(
    const std::vector<ast::Rule>& adorned_rules, const std::string& pred,
    const analysis::Adornment& adornment);

/// Human-readable name of a shape kind ("left-linear", ...).
const char* RuleShapeKindToString(RuleShape::Kind kind);

}  // namespace factlog::core

#endif  // FACTLOG_CORE_RULE_CLASSES_H_
