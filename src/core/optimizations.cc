#include "core/optimizations.h"

#include <algorithm>
#include <map>
#include <set>

#include "analysis/dependency_graph.h"
#include "ast/special_predicates.h"
#include "ast/substitution.h"
#include "core/canonical.h"

namespace factlog::core {

namespace {

using ast::Atom;
using ast::Rule;
using ast::Term;

// Occurrence counts of every variable in a rule (head + body).
std::map<std::string, int> VarCounts(const Rule& rule) {
  std::vector<std::string> vars;
  rule.head().CollectVars(&vars);
  for (const Atom& b : rule.body()) b.CollectVars(&vars);
  std::map<std::string, int> counts;
  for (const std::string& v : vars) ++counts[v];
  return counts;
}

// True when every argument of `lit` is a variable occurring exactly once in
// the whole rule (the paper's bp(_) / fp(_) literals).
bool IsAnonymousLiteral(const Atom& lit,
                        const std::map<std::string, int>& counts) {
  for (const Term& t : lit.args()) {
    if (!t.IsVariable()) return false;
    auto it = counts.find(t.var_name());
    if (it == counts.end() || it->second != 1) return false;
  }
  return true;
}

bool HasLiteralOf(const std::vector<Atom>& body, const std::string& pred) {
  return std::any_of(body.begin(), body.end(), [&pred](const Atom& a) {
    return a.predicate() == pred;
  });
}

}  // namespace

bool DeleteHeadInBodyRules(ast::Program* program) {
  auto& rules = *program->mutable_rules();
  size_t before = rules.size();
  rules.erase(std::remove_if(rules.begin(), rules.end(),
                             [](const Rule& r) {
                               return std::find(r.body().begin(),
                                                r.body().end(),
                                                r.head()) != r.body().end();
                             }),
              rules.end());
  return rules.size() != before;
}

bool DeleteSubsumedMagicLiterals(ast::Program* program,
                                 const OptimizationContext& ctx) {
  if (ctx.bp.empty() || ctx.magic_pred.empty()) return false;
  bool changed = false;
  for (Rule& rule : *program->mutable_rules()) {
    std::vector<Atom>& body = *rule.mutable_body();
    // Collect the argument vectors of bp literals in this body.
    std::vector<const std::vector<Term>*> bp_args;
    for (const Atom& lit : body) {
      if (lit.predicate() == ctx.bp) bp_args.push_back(&lit.args());
    }
    if (bp_args.empty()) continue;
    size_t before = body.size();
    body.erase(std::remove_if(body.begin(), body.end(),
                              [&](const Atom& lit) {
                                if (lit.predicate() != ctx.magic_pred) {
                                  return false;
                                }
                                for (const auto* args : bp_args) {
                                  if (*args == lit.args()) return true;
                                }
                                return false;
                              }),
               body.end());
    changed |= (body.size() != before);
  }
  return changed;
}

bool DeleteAnonymousFactorLiterals(ast::Program* program,
                                   const OptimizationContext& ctx) {
  if (ctx.bp.empty() || ctx.fp.empty()) return false;
  bool changed = false;
  for (Rule& rule : *program->mutable_rules()) {
    // Delete anonymous bp literals while an fp literal is present, then
    // anonymous fp literals while a bp literal is present.
    for (auto [target, witness] : {std::pair{ctx.bp, ctx.fp},
                                   std::pair{ctx.fp, ctx.bp}}) {
      while (true) {
        if (!HasLiteralOf(rule.body(), witness)) break;
        std::map<std::string, int> counts = VarCounts(rule);
        auto& body = *rule.mutable_body();
        auto it = std::find_if(body.begin(), body.end(), [&](const Atom& a) {
          return a.predicate() == target && IsAnonymousLiteral(a, counts);
        });
        if (it == body.end()) break;
        body.erase(it);
        changed = true;
      }
    }
  }
  return changed;
}

bool DeleteSeedFactorLiterals(ast::Program* program,
                              const OptimizationContext& ctx) {
  if (ctx.bp.empty() || ctx.fp.empty() || ctx.seed_args.empty()) return false;
  bool changed = false;
  for (Rule& rule : *program->mutable_rules()) {
    if (!HasLiteralOf(rule.body(), ctx.fp)) continue;
    auto& body = *rule.mutable_body();
    size_t before = body.size();
    body.erase(std::remove_if(body.begin(), body.end(),
                              [&](const Atom& a) {
                                return a.predicate() == ctx.bp &&
                                       a.args() == ctx.seed_args;
                              }),
               body.end());
    changed |= (body.size() != before);
  }
  return changed;
}

bool DeleteUnreachableRules(ast::Program* program,
                            const std::string& query_pred) {
  analysis::DependencyGraph graph = analysis::DependencyGraph::Build(*program);
  std::set<std::string> keep = graph.ReachableFrom(query_pred);
  keep.insert(query_pred);
  auto& rules = *program->mutable_rules();
  size_t before = rules.size();
  rules.erase(std::remove_if(rules.begin(), rules.end(),
                             [&keep](const Rule& r) {
                               return keep.count(r.head().predicate()) == 0;
                             }),
              rules.end());
  return rules.size() != before;
}

bool AnonymizeSingletonVariables(ast::Program* program) {
  bool changed = false;
  for (Rule& rule : *program->mutable_rules()) {
    std::map<std::string, int> counts = VarCounts(rule);
    ast::Substitution subst;
    int n = 0;
    for (const auto& [var, count] : counts) {
      if (count == 1 && var.rfind("_", 0) != 0) {
        std::string fresh;
        do {
          fresh = "_A" + std::to_string(n++);
        } while (counts.count(fresh) > 0);
        subst.Bind(var, Term::Var(fresh));
      }
    }
    if (!subst.empty()) {
      rule = subst.Apply(rule);
      changed = true;
    }
  }
  return changed;
}

bool DeleteDuplicateRules(ast::Program* program) {
  std::set<std::string> seen;
  auto& rules = *program->mutable_rules();
  size_t before = rules.size();
  rules.erase(std::remove_if(rules.begin(), rules.end(),
                             [&seen](const Rule& r) {
                               return !seen.insert(
                                               CanonicalizeRule(r).ToString())
                                           .second;
                             }),
              rules.end());
  return rules.size() != before;
}

namespace {

// Uniform-equivalence redundancy test: is `rule` derivable from the rest of
// the program when its body is frozen to fresh constants?
Result<bool> IsUniformlyRedundant(const ast::Program& program,
                                  size_t rule_index,
                                  const OptimizeOptions& opts) {
  const Rule& rule = program.rules()[rule_index];
  if (rule.body().empty()) return false;  // facts are never redundant here
  // Builtins cannot be frozen into facts; be conservative.
  for (const Atom& b : rule.body()) {
    if (ast::IsBuiltinPredicate(b.predicate())) return false;
  }
  if (ast::IsBuiltinPredicate(rule.head().predicate())) return false;

  // Freeze variables to fresh symbolic constants.
  ast::Substitution freeze;
  int n = 0;
  for (const std::string& v : rule.DistinctVars()) {
    freeze.Bind(v, Term::Sym("fzc" + std::to_string(n++)));
  }
  Rule frozen = freeze.Apply(rule);

  ast::Program chase;
  for (size_t i = 0; i < program.rules().size(); ++i) {
    if (i != rule_index) chase.AddRule(program.rules()[i]);
  }
  for (const Atom& fact : frozen.body()) {
    chase.AddRule(Rule(fact, {}));
  }

  eval::Database db;
  auto result = eval::Evaluate(chase, &db, opts.ue_eval);
  if (!result.ok()) {
    if (result.status().code() == StatusCode::kResourceExhausted) {
      return false;  // cannot prove redundancy within budget
    }
    return result.status();
  }
  auto answers = eval::ExtractAnswers(frozen.head(), &result.value(), &db);
  FACTLOG_RETURN_IF_ERROR(answers.status());
  return !answers->rows.empty();
}

}  // namespace

Result<bool> DeleteUniformlyRedundantRules(ast::Program* program,
                                           const OptimizeOptions& opts) {
  bool changed = false;
  bool deleted = true;
  while (deleted) {
    deleted = false;
    size_t n = program->rules().size();
    for (size_t step = 0; step < n; ++step) {
      size_t i = (opts.ue_order == UeOrder::kForward) ? step : (n - 1 - step);
      FACTLOG_ASSIGN_OR_RETURN(bool redundant,
                               IsUniformlyRedundant(*program, i, opts));
      if (redundant) {
        program->mutable_rules()->erase(program->mutable_rules()->begin() + i);
        changed = true;
        deleted = true;
        break;  // rescan with the smaller program
      }
    }
  }
  return changed;
}

Result<ast::Program> OptimizeProgram(const ast::Program& program,
                                     const OptimizationContext& ctx,
                                     const OptimizeOptions& opts) {
  ast::Program out = program;
  for (int round = 0; round < 100; ++round) {
    bool changed = false;
    if (opts.apply_head_in_body) changed |= DeleteHeadInBodyRules(&out);
    if (opts.apply_prop_5_1) changed |= DeleteSubsumedMagicLiterals(&out, ctx);
    if (opts.apply_anonymize) changed |= AnonymizeSingletonVariables(&out);
    if (opts.apply_prop_5_2) {
      changed |= DeleteAnonymousFactorLiterals(&out, ctx);
    }
    if (opts.apply_prop_5_3) changed |= DeleteSeedFactorLiterals(&out, ctx);
    if (opts.apply_duplicates) changed |= DeleteDuplicateRules(&out);
    if (opts.apply_unreachable && !ctx.query_pred.empty()) {
      changed |= DeleteUnreachableRules(&out, ctx.query_pred);
    }
    if (opts.apply_uniform_equivalence) {
      FACTLOG_ASSIGN_OR_RETURN(bool ue_changed,
                               DeleteUniformlyRedundantRules(&out, opts));
      changed |= ue_changed;
    }
    if (!changed) break;
  }
  return out;
}

std::vector<int> FindStaticArguments(const ast::Program& program,
                                     const std::string& pred,
                                     const ast::Atom& query) {
  if (query.predicate() != pred) return {};
  std::vector<int> out;
  for (size_t i = 0; i < query.arity(); ++i) {
    if (!query.args()[i].IsGround()) continue;  // only bound positions
    bool is_static = true;
    for (const Rule& rule : program.rules()) {
      const bool head_is_pred = rule.head().predicate() == pred;
      if (head_is_pred && !rule.head().args()[i].IsVariable()) {
        is_static = false;
        break;
      }
      for (const Atom& lit : rule.body()) {
        if (lit.predicate() != pred) continue;
        if (!head_is_pred || lit.args()[i] != rule.head().args()[i]) {
          is_static = false;
          break;
        }
      }
      if (!is_static) break;
    }
    if (is_static) out.push_back(static_cast<int>(i));
  }
  return out;
}

std::vector<int> FindViolatingStaticArguments(
    const ast::Program& program, const std::string& pred,
    const ast::Atom& query, const std::vector<int>& static_positions) {
  std::set<int> statics(static_positions.begin(), static_positions.end());
  std::set<int> violating;
  for (const Rule& rule : program.rules()) {
    if (rule.head().predicate() != pred) continue;
    // Only recursive rules are constrained by the §4 templates; exit rules
    // may freely connect bound and free arguments.
    bool recursive = std::any_of(
        rule.body().begin(), rule.body().end(),
        [&pred](const Atom& a) { return a.predicate() == pred; });
    if (!recursive) continue;
    // Bound head variables: variables at the query's ground positions.
    std::set<std::string> bound_vars;
    std::map<std::string, int> static_var_pos;
    for (size_t i = 0; i < rule.head().arity(); ++i) {
      if (i < query.arity() && query.args()[i].IsGround() &&
          rule.head().args()[i].IsVariable()) {
        bound_vars.insert(rule.head().args()[i].var_name());
        if (statics.count(static_cast<int>(i)) > 0) {
          static_var_pos[rule.head().args()[i].var_name()] =
              static_cast<int>(i);
        }
      }
    }
    for (const Atom& lit : rule.body()) {
      if (lit.predicate() == pred) continue;
      std::vector<std::string> vars = lit.DistinctVars();
      bool mixes = std::any_of(vars.begin(), vars.end(),
                               [&](const std::string& v) {
                                 return bound_vars.count(v) == 0;
                               });
      if (!mixes) continue;
      for (const std::string& v : vars) {
        auto it = static_var_pos.find(v);
        if (it != static_var_pos.end()) violating.insert(it->second);
      }
    }
  }
  return std::vector<int>(violating.begin(), violating.end());
}

Result<ReducedProgram> ReduceStaticArguments(
    const ast::Program& program, const std::string& pred,
    const ast::Atom& query, const std::vector<int>& positions) {
  if (positions.empty()) {
    return Status::Invalid("no positions to reduce");
  }
  std::set<int> drop(positions.begin(), positions.end());

  // New predicate name, unique in the program.
  std::set<std::string> taken;
  for (const auto& [name, arity] : program.PredicateArities()) {
    taken.insert(name);
  }
  std::string new_name = pred + "_r";
  while (taken.count(new_name) > 0) new_name += "_";

  auto reduce_atom = [&](const Atom& a) {
    if (a.predicate() != pred) return a;
    std::vector<Term> args;
    for (size_t i = 0; i < a.arity(); ++i) {
      if (drop.count(static_cast<int>(i)) == 0) args.push_back(a.args()[i]);
    }
    return Atom(new_name, std::move(args));
  };

  ReducedProgram out;
  out.predicate = new_name;
  out.removed_positions = positions;
  for (const Rule& rule : program.rules()) {
    // Substitute the query constant for the static head variable (Def 5.2).
    ast::Substitution subst;
    if (rule.head().predicate() == pred) {
      for (int i : positions) {
        const Term& head_arg = rule.head().args()[i];
        if (!head_arg.IsVariable()) {
          return Status::FailedPrecondition(
              "static position " + std::to_string(i) +
              " does not hold a variable in rule: " + rule.ToString());
        }
        subst.Bind(head_arg.var_name(), query.args()[i]);
      }
    }
    Rule substituted = subst.Apply(rule);
    std::vector<Atom> body;
    body.reserve(substituted.body().size());
    for (const Atom& b : substituted.body()) body.push_back(reduce_atom(b));
    out.program.AddRule(Rule(reduce_atom(substituted.head()), std::move(body)));
  }
  out.query = reduce_atom(query);
  out.program.set_query(out.query);
  return out;
}

}  // namespace factlog::core
