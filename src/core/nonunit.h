// Non-unit factoring (§7.3): factoring a recursive predicate that is not
// the query predicate.
//
// §7.3 leaves open when p^a can be factored inside a larger program and
// gives Example 7.2 as evidence: with the right-linear definition P1, the
// predicate p^bf factors in P ∪ P1 for the query q(1)? (P = q(Y) :-
// a(X, Z), p(Z, Y)) but not when P is q(X, Y) :- a(X, Z), p(Z, Y) with the
// open query; and with the combined-rule definition P2 it never factors.
// The paper conjectures the right-linear definitions have the property.
//
// This module implements a conservative sufficient condition capturing
// exactly that discussion. FactorInnerPredicate(P, Q, p) factors p^a into
// bp/fp inside the Magic program of (P, Q) when:
//
//  (C1) p has a single reachable adornment p^a with >= 1 bound and >= 1
//       free position;
//  (C2) the rules defining p^a reference only p^a and EDB predicates, are
//       right-linear or exit rules, and are selection-pushing. Right-
//       linearity matters because the inner magic set holds *multiple*
//       seeds (one per outer call binding): left-linear and combined rules
//       mix answers across seeds exactly as in Example 4.3's violations —
//       this is why P2 of Example 7.2 is rejected;
//  (C3) p^a has exactly one call site outside its own definition, and in
//       that rule the connected component (over the remaining body atoms)
//       feeding the call's bound arguments touches neither the rule's head
//       variables nor the call's free (answer) variables. Under (C3) the
//       inner magic set equals the component's bindings, so "an answer to
//       some goal" and "an answer to this rule's goal" coincide — this is
//       what separates q(Y) :- a(X,Z), p(Z,Y) (component {a} touches
//       nothing visible) from q(X,Y) :- a(X,Z), p(Z,Y) (component touches
//       the head variable X).

#ifndef FACTLOG_CORE_NONUNIT_H_
#define FACTLOG_CORE_NONUNIT_H_

#include <optional>
#include <string>
#include <vector>

#include "analysis/adornment.h"
#include "core/factoring.h"
#include "core/rule_classes.h"
#include "transform/magic.h"

namespace factlog::core {

/// Outcome of the §7.3 conditions.
struct NonUnitReport {
  bool factorable = false;
  /// The adorned name of the inner predicate (e.g. "p_bf").
  std::string predicate;
  analysis::Adornment adornment;
  /// Sub-program classification (C2).
  ProgramClassification classification;
  std::vector<std::string> reasons;
};

/// Result of non-unit factoring.
struct NonUnitResult {
  analysis::AdornedProgram adorned;
  transform::MagicProgram magic;
  NonUnitReport report;
  /// Set when report.factorable: the Magic program with p^a factored.
  std::optional<FactoredProgram> factored;
};

/// Checks (C1)-(C3) for `pred` in (program, query) and, when they hold,
/// factors the adorned `pred` inside the Magic program. The query predicate
/// itself is left binary/untouched — use core::OptimizeQuery for the unit
/// case.
Result<NonUnitResult> FactorInnerPredicate(const ast::Program& program,
                                           const ast::Atom& query,
                                           const std::string& pred);

}  // namespace factlog::core

#endif  // FACTLOG_CORE_NONUNIT_H_
