#include "core/nonunit.h"

#include <algorithm>
#include <set>

#include "core/factorability.h"

namespace factlog::core {

namespace {

using ast::Atom;
using ast::Rule;

std::set<std::string> TermVarsAt(const Atom& atom,
                                 const std::vector<int>& positions) {
  std::set<std::string> out;
  for (int p : positions) {
    std::vector<std::string> vars;
    atom.args()[p].CollectVars(&vars);
    out.insert(vars.begin(), vars.end());
  }
  return out;
}

bool Intersects(const std::set<std::string>& a,
                const std::set<std::string>& b) {
  return std::any_of(a.begin(), a.end(),
                     [&b](const std::string& v) { return b.count(v) > 0; });
}

// Union of the variables of all body atoms (excluding `skip_pred` literals)
// connected, transitively through shared variables, to the seed set.
std::set<std::string> ComponentClosure(const Rule& rule,
                                       const std::string& skip_pred,
                                       std::set<std::string> seed) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Atom& lit : rule.body()) {
      if (lit.predicate() == skip_pred) continue;
      std::set<std::string> vars;
      {
        std::vector<std::string> v = lit.DistinctVars();
        vars.insert(v.begin(), v.end());
      }
      if (Intersects(vars, seed)) {
        for (const std::string& v : vars) {
          if (seed.insert(v).second) changed = true;
        }
      }
    }
  }
  return seed;
}

}  // namespace

Result<NonUnitResult> FactorInnerPredicate(const ast::Program& program,
                                           const ast::Atom& query,
                                           const std::string& pred) {
  NonUnitResult out;
  FACTLOG_ASSIGN_OR_RETURN(out.adorned, analysis::Adorn(program, query));

  // (C1): a single reachable adornment of `pred`.
  const analysis::AdornedPredicate* target = nullptr;
  for (const auto& [name, ap] : out.adorned.predicates()) {
    if (ap.base != pred) continue;
    if (target != nullptr) {
      out.report.reasons.push_back(
          "C1: multiple adornments of " + pred + " are reachable (" +
          target->Name() + ", " + name + ")");
      FACTLOG_ASSIGN_OR_RETURN(out.magic, transform::MagicSets(out.adorned));
      return out;
    }
    target = &ap;
  }
  if (target == nullptr) {
    return Status::NotFound("predicate '" + pred +
                            "' is not reachable from the query");
  }
  out.report.predicate = target->Name();
  out.report.adornment = target->adornment;

  // Split the adorned rules into the sub-program defining p^a and the rest.
  std::vector<Rule> sub_rules;
  std::vector<const Rule*> other_rules;
  for (const Rule& r : out.adorned.program().rules()) {
    if (r.head().predicate() == target->Name()) {
      sub_rules.push_back(r);
    } else {
      other_rules.push_back(&r);
    }
  }

  // (C2): the sub-program is self-contained, right-linear/exit, and
  // selection-pushing.
  bool c2 = true;
  std::set<std::string> idb = out.adorned.program().IdbPredicates();
  for (const Rule& r : sub_rules) {
    for (const Atom& b : r.body()) {
      if (b.predicate() != target->Name() && idb.count(b.predicate()) > 0) {
        out.report.reasons.push_back(
            "C2: definition of " + target->Name() +
            " references another IDB predicate: " + b.predicate());
        c2 = false;
      }
    }
  }
  if (c2) {
    FACTLOG_ASSIGN_OR_RETURN(
        out.report.classification,
        ClassifyRules(sub_rules, target->Name(), target->adornment));
    if (!out.report.classification.rlc_stable) {
      out.report.reasons.push_back("C2: sub-program is not RLC-stable: " +
                                   out.report.classification.diagnostic);
      c2 = false;
    }
  }
  if (c2) {
    for (const RuleShape& s : out.report.classification.shapes) {
      if (s.kind != RuleShape::Kind::kExit &&
          s.kind != RuleShape::Kind::kRightLinear) {
        out.report.reasons.push_back(
            "C2: rule " + std::to_string(s.rule_index) + " is " +
            RuleShapeKindToString(s.kind) +
            "; only right-linear definitions are safe under multiple seeds "
            "(Example 7.2's P2 case)");
        c2 = false;
      }
    }
  }
  if (c2) {
    FACTLOG_ASSIGN_OR_RETURN(FactorabilityReport fr,
                             CheckFactorability(out.report.classification));
    if (!fr.selection_pushing) {
      out.report.reasons.push_back(
          "C2: sub-program is not selection-pushing");
      for (const std::string& f : fr.failures) {
        out.report.reasons.push_back("  " + f);
      }
      c2 = false;
    }
  }

  // (C3): one call site; its bound-side component is invisible.
  std::vector<int> bound_pos = target->adornment.BoundPositions();
  std::vector<int> free_pos = target->adornment.FreePositions();
  int call_sites = 0;
  bool c3 = true;
  for (const Rule* r : other_rules) {
    for (const Atom& lit : r->body()) {
      if (lit.predicate() != target->Name()) continue;
      ++call_sites;
      std::set<std::string> bound_vars = TermVarsAt(lit, bound_pos);
      std::set<std::string> component =
          ComponentClosure(*r, target->Name(), bound_vars);
      std::vector<std::string> head_vars;
      r->head().CollectVars(&head_vars);
      std::set<std::string> head_set(head_vars.begin(), head_vars.end());
      if (Intersects(component, head_set)) {
        out.report.reasons.push_back(
            "C3: the goal-feeding component of the call in rule '" +
            r->ToString() + "' reaches a head variable");
        c3 = false;
      }
      std::set<std::string> free_vars = TermVarsAt(lit, free_pos);
      if (Intersects(component, free_vars)) {
        out.report.reasons.push_back(
            "C3: the goal-feeding component correlates with the call's "
            "answer variables in rule '" + r->ToString() + "'");
        c3 = false;
      }
    }
  }
  if (call_sites != 1) {
    out.report.reasons.push_back(
        "C3: expected exactly one call site of " + target->Name() +
        ", found " + std::to_string(call_sites));
    c3 = false;
  }

  FACTLOG_ASSIGN_OR_RETURN(out.magic, transform::MagicSets(out.adorned));
  out.report.factorable = c2 && c3;
  if (!out.report.factorable) return out;

  FactorSplit split;
  split.predicate = target->Name();
  split.part1 = bound_pos;
  split.part2 = free_pos;
  split.name1 = "b" + target->base;
  split.name2 = "f" + target->base;
  FACTLOG_ASSIGN_OR_RETURN(
      FactoredProgram factored,
      FactorTransform(out.magic.program, out.magic.query, split));
  out.factored = std::move(factored);
  return out;
}

}  // namespace factlog::core
