// The pass-manager core of the query compiler.
//
// Every stage of the paper's pipeline (adornment, classification, the
// Lemma 5.1/5.2 normalizations, Magic Sets, supplementary magic, Counting,
// the direct linear rewritings, factoring, and each §5 cleanup) is expressed
// as a `Transform`: a named pass with explicit preconditions that mutates a
// shared `TransformState`. Strategies are then declarative pass sequences
// (see core/pipeline.h) executed by `RunPasses`, which times every pass and
// records a structured `PassTraceEntry` — replacing the free-form string
// trace the old pipeline kept.
//
// The end product of a sequence is a `CompiledQuery`: the executable
// program + query, the strategy that produced it, and the full pass trace.
// Compiled queries are the unit of caching in the api::Engine facade.

#ifndef FACTLOG_CORE_TRANSFORM_PASS_H_
#define FACTLOG_CORE_TRANSFORM_PASS_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/adornment.h"
#include "analysis/lint.h"
#include "ast/program.h"
#include "common/diagnostic.h"
#include "common/status.h"
#include "core/factorability.h"
#include "core/factoring.h"
#include "core/optimizations.h"
#include "core/rule_classes.h"
#include "plan/join_plan.h"
#include "transform/counting.h"
#include "transform/linear_rewrite.h"
#include "transform/magic.h"
#include "transform/supplementary_magic.h"

namespace factlog::core {

/// Query-compilation strategies. `kAuto` and `kFactoring` are composite:
/// `kFactoring` is the paper's pipeline (factoring when a Theorem 4.1-4.3
/// condition holds, Magic program otherwise), `kAuto` additionally upgrades
/// the non-factorable fallback to supplementary magic.
enum class Strategy {
  kAuto = 0,
  kMagic,
  kSupplementaryMagic,
  kFactoring,
  kCounting,
  kLinearRewrite,
};

/// Short stable name ("auto", "magic", "supplementary-magic", ...).
const char* StrategyToString(Strategy strategy);

/// Inverse of StrategyToString; also accepts '_' for '-'.
std::optional<Strategy> StrategyFromString(const std::string& name);

/// All concrete strategies (everything but kAuto), in enum order.
std::vector<Strategy> AllConcreteStrategies();

/// One structured trace record per executed pass.
struct PassTraceEntry {
  /// Transform::name() of the pass.
  std::string pass;
  /// Whether the pass changed the state (false: skipped / nothing to do).
  bool applied = false;
  /// Whether the pass halted the sequence (e.g. "not factorable").
  bool halted = false;
  /// Rule count of the best-so-far program before / after the pass.
  size_t rules_before = 0;
  size_t rules_after = 0;
  /// Wall-clock time spent in the pass.
  int64_t duration_us = 0;
  /// Human-readable decisions, one per line.
  std::vector<std::string> notes;

  /// "<pass> [applied, 12 -> 8 rules, 42us] note; note".
  std::string ToString() const;
};

/// Renders a whole trace, one entry per line.
std::string TraceToString(const std::vector<PassTraceEntry>& trace);

/// The mutable state a pass sequence threads through its transforms. Passes
/// fill in analysis artifacts (adorned, classification, factorability) and
/// rewrite artifacts (magic, factored, optimized, ...); `final_program()`
/// always names the most-rewritten program available.
struct TransformState {
  /// The program/query being compiled, after any normalization (body
  /// reordering, static argument reduction).
  ast::Program source;
  ast::Atom source_query;

  // Analysis artifacts.
  std::optional<analysis::AdornedProgram> adorned;
  std::optional<ProgramClassification> classification;
  std::optional<FactorabilityReport> factorability;

  // Rewrite artifacts (at most one family per sequence).
  std::optional<transform::MagicProgram> magic;
  std::optional<transform::SupplementaryMagicProgram> supplementary;
  std::optional<transform::CountingProgram> counting;
  std::optional<transform::LinearRewriteResult> linear;
  std::optional<FactoredProgram> factored;
  /// §5-cleaned factored program (query set), owned by the fixpoint pass.
  std::optional<ast::Program> optimized;

  bool static_reduction_applied = false;
  std::vector<int> reduced_positions;
  bool factoring_applied = false;

  /// Per-rule join plans for the final program, filled by the join-plan pass
  /// (the last pass of every compilation).
  std::optional<plan::ProgramPlan> plans;

  /// Metadata for the §5 passes, filled by the factoring pass.
  OptimizationContext opt_ctx;

  /// Lint warnings from the opening lint pass (errors abort the sequence
  /// instead of landing here). Carried onto CompiledQuery::diagnostics.
  std::vector<Diagnostic> diagnostics;

  /// Structured log, one entry per executed pass (RunPasses appends).
  std::vector<PassTraceEntry> trace;

  /// The most rewritten program/query available so far.
  const ast::Program& final_program() const;
  const ast::Atom& final_query() const;

  /// Appends a note to the entry of the pass currently running.
  void Note(std::string note) { pending_notes.push_back(std::move(note)); }
  /// Notes buffered by the running pass; drained by RunPasses.
  std::vector<std::string> pending_notes;
};

/// Outcome of one pass application.
enum class PassOutcome {
  /// The pass changed the state.
  kApplied,
  /// Preconditions held but there was nothing to do.
  kSkipped,
  /// The pass determined the remaining sequence cannot apply (e.g. the
  /// program is not factorable); RunPasses stops gracefully.
  kHalt,
};

/// A named, precondition-checked transformation of TransformState.
class Transform {
 public:
  virtual ~Transform() = default;

  /// Stable pass name ("adorn", "magic-sets", "prop-5.1", ...).
  virtual const char* name() const = 0;

  /// OK when the pass may run on `state`. RunPasses fails with the returned
  /// status (annotated with the pass name) otherwise.
  virtual Status CheckPreconditions(const TransformState& state) const {
    (void)state;
    return Status::OK();
  }

  virtual Result<PassOutcome> Apply(TransformState& state) = 0;
};

using PassSequence = std::vector<std::unique_ptr<Transform>>;

struct RunPassesOptions {
  /// Treat a kHalt outcome as an error (strict compilation) instead of a
  /// graceful stop (the paper pipeline's magic fallback).
  bool halt_is_error = false;
};

/// Runs the sequence: for each pass, checks preconditions, times Apply, and
/// appends a PassTraceEntry to `state.trace`. Returns true when the whole
/// sequence ran, false when a pass halted it (with halt_is_error unset).
Result<bool> RunPasses(const PassSequence& passes, TransformState& state,
                       const RunPassesOptions& opts = {});

// ---- Concrete pass factories -----------------------------------------------

/// Static analysis (analysis/lint.h) over the source program + query: the
/// mandatory opening pass of every compilation. Lint errors fail the pass
/// with kInvalidArgument carrying the rendered report; warnings accumulate
/// on TransformState::diagnostics and as trace notes.
std::unique_ptr<Transform> MakeLintPass(analysis::LintOptions opts = {});

/// Adorns `source` for `source_query` (left-to-right SIP).
std::unique_ptr<Transform> MakeAdornPass();

/// Classifies the adorned program against the §4 rule templates.
std::unique_ptr<Transform> MakeClassifyPass();

/// When the classification is not RLC-stable, retries with body reordering
/// (§4.1) and static argument reduction (Lemmas 5.1/5.2, gated by
/// `try_static_reduction`), re-adorning and re-classifying on success.
std::unique_ptr<Transform> MakeNormalizePass(bool try_static_reduction);

/// Magic Sets (§2.1) on the adorned program.
std::unique_ptr<Transform> MakeMagicPass();

/// Supplementary Magic Sets (Beeri & Ramakrishnan).
std::unique_ptr<Transform> MakeSupplementaryMagicPass();

/// The Counting transformation (§6.4) on the classified program.
std::unique_ptr<Transform> MakeCountingPass();

/// The direct linear rewriting of §6.3 (right-linear, then left-linear).
std::unique_ptr<Transform> MakeLinearRewritePass();

/// Checks the Theorem 4.1-4.3 sufficient conditions; halts the sequence
/// when the program is not RLC-stable or not factorable.
std::unique_ptr<Transform> MakeFactorabilityGatePass();

/// Factors the recursive predicate of the Magic program into its bound and
/// free parts (§3).
std::unique_ptr<Transform> MakeFactoringPass();

// Each §5 cleanup as an individual pass (preconditions: factored program
// present; the fixpoint pass initializes `optimized` from it).
std::unique_ptr<Transform> MakeHeadInBodyPass();          // Prop 5.4a
std::unique_ptr<Transform> MakeSubsumedMagicPass();       // Prop 5.1
std::unique_ptr<Transform> MakeAnonymizePass();           // Prop 5.5
std::unique_ptr<Transform> MakeAnonymousFactorPass();     // Prop 5.2
std::unique_ptr<Transform> MakeSeedFactorPass();          // Prop 5.3
std::unique_ptr<Transform> MakeDuplicateRulePass();
std::unique_ptr<Transform> MakeUnreachablePass();         // Prop 5.4b
std::unique_ptr<Transform> MakeUniformEquivalencePass(OptimizeOptions opts);

/// Runs `children` in order, repeatedly, until a full round applies none of
/// them (bounded by `max_rounds`). Initializes `state.optimized` from the
/// factored program when absent.
std::unique_ptr<Transform> MakeFixpointPass(PassSequence children,
                                            int max_rounds = 100);

/// Computes per-rule join plans (order, index requirements, driver) for the
/// state's final program — the last pass of every strategy. `opts` carries
/// extent hints (e.g. base-relation sizes); the pass unions the program's
/// IDB predicates into the delta set itself. Notes one summary line per
/// rule in the trace.
std::unique_ptr<Transform> MakeJoinPlanPass(plan::PlanOptions opts = {});

/// The full §5 cleanup fixpoint in the order OptimizeProgram used.
std::unique_ptr<Transform> MakeSectionFiveFixpointPass(
    const OptimizeOptions& opts);

/// The unified compilation artifact: the executable program plus everything
/// needed to run, cache, and explain it.
struct CompiledQuery {
  /// Strategy that produced the plan (never kAuto: the engine resolves
  /// kAuto to the concrete strategy it picked).
  Strategy strategy = Strategy::kMagic;
  /// The executable (most rewritten) program and query.
  ast::Program program;
  ast::Atom query;
  /// The normalized source the plan was compiled from.
  ast::Program source;
  ast::Atom source_query;
  /// Whether factoring actually applied (kFactoring falls back to the
  /// Magic program when the Theorem 4.1-4.3 conditions fail).
  bool factoring_applied = false;
  bool static_reduction_applied = false;
  /// Factor class established by the gate pass (kNotFactorable otherwise).
  FactorClass factor_class = FactorClass::kNotFactorable;
  /// Per-rule join plans for `program` (index-aligned with its rules): the
  /// evaluation order, per-literal index requirements, and partitioning
  /// driver every engine consumes. Computed by the join-plan pass.
  plan::ProgramPlan plans;
  /// Base-relation sizes the join plans were costed against (the extent
  /// hints in effect at compile time, restricted to predicates the program
  /// mentions). The engine's stale-plan guard compares these against the
  /// live extents to decide when a cached or persisted plan must be
  /// recompiled.
  std::map<std::string, uint64_t> planner_hints;
  /// Lint warnings the opening lint pass reported for the source program
  /// (errors reject compilation outright, so a CompiledQuery never carries
  /// error-severity records).
  std::vector<Diagnostic> diagnostics;
  /// Structured per-pass trace with timings and rule counts.
  std::vector<PassTraceEntry> trace;
};

}  // namespace factlog::core

#endif  // FACTLOG_CORE_TRANSFORM_PASS_H_
