// Canonical program forms for structural comparison.
//
// §6.3 and Theorem 6.4 make *syntactic* claims: the direct linear rewriting
// of [9] and the Counting program with index fields deleted are the same
// program as the optimized factored Magic program, up to predicate renaming,
// variable renaming, and rule/literal order. Canonicalization makes such
// equalities testable with a string compare.

#ifndef FACTLOG_CORE_CANONICAL_H_
#define FACTLOG_CORE_CANONICAL_H_

#include <map>
#include <string>

#include "ast/program.h"

namespace factlog::core {

/// Canonicalizes one rule: sorts body literals (stably, by a rename-invariant
/// key), renames variables V0, V1, ... in first-use order, then re-sorts.
ast::Rule CanonicalizeRule(const ast::Rule& rule);

/// Canonicalizes a program: canonicalizes each rule, drops exact duplicates,
/// and sorts the rules. The query is canonicalized too (variables renamed).
ast::Program CanonicalizeProgram(const ast::Program& program);

/// Canonical text rendering (used for equality assertions in tests).
std::string CanonicalString(const ast::Program& program);

/// Structural equality after applying `renames` (old predicate name -> new)
/// to `a` and canonicalizing both sides.
bool StructurallyEqual(const ast::Program& a, const ast::Program& b,
                       const std::map<std::string, std::string>& renames = {});

/// Renames predicates throughout a program (heads, bodies, query).
ast::Program RenamePredicates(const ast::Program& program,
                              const std::map<std::string, std::string>& renames);

}  // namespace factlog::core

#endif  // FACTLOG_CORE_CANONICAL_H_
