#include "core/transform_pass.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <numeric>
#include <set>
#include <utility>

namespace factlog::core {

const char* StrategyToString(Strategy strategy) {
  switch (strategy) {
    case Strategy::kAuto:
      return "auto";
    case Strategy::kMagic:
      return "magic";
    case Strategy::kSupplementaryMagic:
      return "supplementary-magic";
    case Strategy::kFactoring:
      return "factoring";
    case Strategy::kCounting:
      return "counting";
    case Strategy::kLinearRewrite:
      return "linear-rewrite";
  }
  return "unknown";
}

std::optional<Strategy> StrategyFromString(const std::string& name) {
  std::string normalized = name;
  std::replace(normalized.begin(), normalized.end(), '_', '-');
  for (Strategy s :
       {Strategy::kAuto, Strategy::kMagic, Strategy::kSupplementaryMagic,
        Strategy::kFactoring, Strategy::kCounting, Strategy::kLinearRewrite}) {
    if (normalized == StrategyToString(s)) return s;
  }
  return std::nullopt;
}

std::vector<Strategy> AllConcreteStrategies() {
  return {Strategy::kMagic, Strategy::kSupplementaryMagic,
          Strategy::kFactoring, Strategy::kCounting, Strategy::kLinearRewrite};
}

std::string PassTraceEntry::ToString() const {
  std::string out = pass;
  out += halted ? " [halted" : (applied ? " [applied" : " [no-op");
  if (rules_before != rules_after) {
    out += ", " + std::to_string(rules_before) + " -> " +
           std::to_string(rules_after) + " rules";
  } else {
    out += ", " + std::to_string(rules_after) + " rules";
  }
  out += ", " + std::to_string(duration_us) + "us]";
  for (const std::string& note : notes) out += "\n    " + note;
  return out;
}

std::string TraceToString(const std::vector<PassTraceEntry>& trace) {
  std::string out;
  for (const PassTraceEntry& entry : trace) {
    out += entry.ToString();
    out += "\n";
  }
  return out;
}

const ast::Program& TransformState::final_program() const {
  if (optimized.has_value()) return *optimized;
  if (factored.has_value()) return factored->program;
  if (counting.has_value()) return counting->program;
  if (linear.has_value()) return linear->program;
  if (supplementary.has_value()) return supplementary->program;
  if (magic.has_value()) return magic->program;
  return source;
}

const ast::Atom& TransformState::final_query() const {
  if (factored.has_value()) return factored->query;
  if (counting.has_value()) return counting->query;
  if (linear.has_value()) return linear->query;
  if (supplementary.has_value()) return supplementary->query;
  if (magic.has_value()) return magic->query;
  return source_query;
}

Result<bool> RunPasses(const PassSequence& passes, TransformState& state,
                       const RunPassesOptions& opts) {
  for (const std::unique_ptr<Transform>& pass : passes) {
    Status pre = pass->CheckPreconditions(state);
    if (!pre.ok()) {
      return Status(pre.code(),
                    std::string(pass->name()) + ": " + pre.message());
    }
    PassTraceEntry entry;
    entry.pass = pass->name();
    entry.rules_before = state.final_program().rules().size();
    const auto start = std::chrono::steady_clock::now();
    Result<PassOutcome> outcome = pass->Apply(state);
    entry.duration_us = std::chrono::duration_cast<std::chrono::microseconds>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    entry.notes = std::move(state.pending_notes);
    state.pending_notes.clear();
    entry.rules_after = state.final_program().rules().size();
    if (!outcome.ok()) {
      state.trace.push_back(std::move(entry));
      return outcome.status();
    }
    entry.applied = (*outcome == PassOutcome::kApplied);
    entry.halted = (*outcome == PassOutcome::kHalt);
    state.trace.push_back(std::move(entry));
    if (state.trace.back().halted) {
      if (opts.halt_is_error) {
        std::string msg = std::string(pass->name()) + " halted compilation";
        if (!state.trace.back().notes.empty()) {
          msg += ": " + state.trace.back().notes.front();
        }
        return Status::FailedPrecondition(std::move(msg));
      }
      return false;
    }
  }
  return true;
}

namespace {

// ---- Normalization helpers (body reordering for a unit adornment) ----------

// Adorns and classifies one (program, query) pair.
struct Attempt {
  analysis::AdornedProgram adorned;
  ProgramClassification classification;
};

Result<Attempt> TryClassify(const ast::Program& program,
                            const ast::Atom& query) {
  Attempt a;
  FACTLOG_ASSIGN_OR_RETURN(a.adorned, analysis::Adorn(program, query));
  FACTLOG_ASSIGN_OR_RETURN(a.classification, ClassifyProgram(a.adorned));
  return a;
}

void BindAtomVars(const ast::Atom& atom, std::set<std::string>* bound) {
  std::vector<std::string> vars;
  atom.CollectVars(&vars);
  bound->insert(vars.begin(), vars.end());
}

void BindTermVars(const ast::Term& term, std::set<std::string>* bound) {
  std::vector<std::string> vars;
  term.CollectVars(&vars);
  bound->insert(vars.begin(), vars.end());
}

bool AtomPatternMatches(const ast::Atom& atom,
                        const analysis::Adornment& target,
                        const std::set<std::string>& bound) {
  for (size_t i = 0; i < atom.arity(); ++i) {
    std::vector<std::string> vars;
    atom.args()[i].CollectVars(&vars);
    bool is_bound =
        atom.args()[i].IsGround() ||
        std::all_of(vars.begin(), vars.end(), [&](const std::string& v) {
          return bound.count(v) > 0;
        });
    if (is_bound != target.IsBound(i)) return false;
  }
  return true;
}

// Searches for a body order under which every occurrence of `pred` receives
// exactly the adornment `target` (left-to-right SIP simulation). Returns
// the reordered body, or nullopt. The paper's classification is explicitly
// "up to ... reordering of predicate instances in the body" (§4.1); the
// as-written order can over-bind an occurrence (e.g. t(X,9) on right-linear
// transitive closure binds W through e(X,W) before reaching t(W,Y)).
std::optional<std::vector<ast::Atom>> FindUnitBodyOrder(
    const ast::Rule& rule, const std::string& pred,
    const analysis::Adornment& target) {
  const std::vector<ast::Atom>& body = rule.body();
  if (body.size() > 8) return std::nullopt;  // permutation search bound

  std::set<std::string> initial_bound;
  for (size_t i = 0; i < rule.head().arity(); ++i) {
    if (target.IsBound(i)) BindTermVars(rule.head().args()[i], &initial_bound);
  }

  std::vector<int> perm(body.size());
  std::iota(perm.begin(), perm.end(), 0);
  do {
    std::set<std::string> bound = initial_bound;
    bool ok = true;
    for (int idx : perm) {
      const ast::Atom& lit = body[idx];
      if (lit.predicate() == pred) {
        if (lit.arity() != target.arity() ||
            !AtomPatternMatches(lit, target, bound)) {
          ok = false;
          break;
        }
      }
      BindAtomVars(lit, &bound);
    }
    if (ok) {
      std::vector<ast::Atom> out;
      out.reserve(body.size());
      for (int idx : perm) out.push_back(body[idx]);
      return out;
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
  return std::nullopt;
}

// Reorders rule bodies of the query predicate so each recursive occurrence
// adorns exactly like the query. Rules with no such order keep their
// original body.
ast::Program ReorderForUnitAdornment(const ast::Program& program,
                                     const ast::Atom& query, bool* changed) {
  analysis::Adornment target = analysis::Adornment::ForQuery(query);
  ast::Program out;
  *changed = false;
  for (const ast::Rule& rule : program.rules()) {
    if (rule.head().predicate() != query.predicate()) {
      out.AddRule(rule);
      continue;
    }
    std::optional<std::vector<ast::Atom>> reordered =
        FindUnitBodyOrder(rule, query.predicate(), target);
    if (reordered.has_value() && *reordered != rule.body()) {
      *changed = true;
      out.AddRule(ast::Rule(rule.head(), std::move(*reordered)));
    } else {
      out.AddRule(rule);
    }
  }
  if (program.query().has_value()) out.set_query(*program.query());
  return out;
}

void NoteShapes(TransformState& state) {
  for (const RuleShape& s : state.classification->shapes) {
    state.Note("rule " + std::to_string(s.rule_index) + ": " +
               RuleShapeKindToString(s.kind) +
               (s.diagnostic.empty() ? "" : " (" + s.diagnostic + ")"));
  }
}

// ---- Concrete passes -------------------------------------------------------

class LintPass : public Transform {
 public:
  explicit LintPass(analysis::LintOptions opts) : opts_(std::move(opts)) {}
  const char* name() const override { return "lint"; }
  Result<PassOutcome> Apply(TransformState& state) override {
    // Lint the program as the user wrote it, with the query attached so the
    // reachability checks (L105/L106) see it.
    ast::Program program = state.source;
    program.set_query(state.source_query);
    analysis::LintReport report = analysis::LintProgram(program, opts_);
    for (const Diagnostic& d : report.diagnostics) state.Note(d.ToString());
    if (report.num_strata > 1) {
      state.Note("stratification: " + std::to_string(report.num_strata) +
                 " strata");
    }
    if (!report.ok()) return DiagnosticsToStatus(report.diagnostics);
    if (report.diagnostics.empty()) return PassOutcome::kSkipped;
    state.diagnostics.insert(state.diagnostics.end(),
                             report.diagnostics.begin(),
                             report.diagnostics.end());
    return PassOutcome::kApplied;
  }

 private:
  analysis::LintOptions opts_;
};

class AdornPass : public Transform {
 public:
  const char* name() const override { return "adorn"; }
  Status CheckPreconditions(const TransformState& state) const override {
    if (state.adorned.has_value()) {
      return Status::FailedPrecondition("program is already adorned");
    }
    return Status::OK();
  }
  Result<PassOutcome> Apply(TransformState& state) override {
    FACTLOG_ASSIGN_OR_RETURN(state.adorned,
                             analysis::Adorn(state.source, state.source_query));
    state.Note("adorned query predicate: " +
               state.adorned->query_predicate().Name());
    return PassOutcome::kApplied;
  }
};

class ClassifyPass : public Transform {
 public:
  const char* name() const override { return "classify"; }
  Status CheckPreconditions(const TransformState& state) const override {
    if (!state.adorned.has_value()) {
      return Status::FailedPrecondition("program is not adorned yet");
    }
    return Status::OK();
  }
  Result<PassOutcome> Apply(TransformState& state) override {
    FACTLOG_ASSIGN_OR_RETURN(state.classification,
                             ClassifyProgram(*state.adorned));
    NoteShapes(state);
    return PassOutcome::kApplied;
  }
};

class NormalizePass : public Transform {
 public:
  explicit NormalizePass(bool try_static_reduction)
      : try_static_reduction_(try_static_reduction) {}
  const char* name() const override { return "normalize"; }
  Status CheckPreconditions(const TransformState& state) const override {
    if (!state.classification.has_value()) {
      return Status::FailedPrecondition("program is not classified yet");
    }
    return Status::OK();
  }
  Result<PassOutcome> Apply(TransformState& state) override {
    if (state.classification->rlc_stable) return PassOutcome::kSkipped;
    bool applied = false;

    // Retry with body reordering (the §4.1 "reordering of predicate
    // instances").
    bool reordered_changed = false;
    ast::Program reordered = ReorderForUnitAdornment(
        state.source, state.source_query, &reordered_changed);
    if (reordered_changed) {
      auto retry = TryClassify(reordered, state.source_query);
      if (retry.ok() && retry->classification.rlc_stable) {
        state.Note("body literals reordered for a unit adornment");
        state.source = std::move(reordered);
        state.adorned = std::move(retry->adorned);
        state.classification = std::move(retry->classification);
        applied = true;
      }
    }

    // Retry with static argument reduction (Lemmas 5.1/5.2).
    if (!state.classification->rlc_stable && try_static_reduction_) {
      std::vector<int> static_args = FindStaticArguments(
          state.source, state.source_query.predicate(), state.source_query);
      // Candidate position sets, per Lemma 5.2: first the static positions
      // that violate the §4 templates, then all static positions, then each
      // singleton.
      std::vector<std::vector<int>> candidates;
      std::vector<int> violating = FindViolatingStaticArguments(
          state.source, state.source_query.predicate(), state.source_query,
          static_args);
      if (!violating.empty()) candidates.push_back(violating);
      if (!static_args.empty()) candidates.push_back(static_args);
      for (int p : static_args) candidates.push_back({p});
      for (const std::vector<int>& positions : candidates) {
        auto reduced =
            ReduceStaticArguments(state.source, state.source_query.predicate(),
                                  state.source_query, positions);
        if (!reduced.ok()) continue;
        // The reduced program may itself need reordering.
        bool ignored = false;
        ast::Program reduced_reordered = ReorderForUnitAdornment(
            reduced->program, reduced->query, &ignored);
        auto retry = TryClassify(reduced_reordered, reduced->query);
        if (retry.ok() && retry->classification.rlc_stable) {
          state.Note("static argument reduction applied (Lemma 5.1/5.2) on " +
                     std::to_string(positions.size()) + " position(s)");
          state.source = std::move(reduced_reordered);
          state.source_query = reduced->query;
          state.static_reduction_applied = true;
          state.reduced_positions = positions;
          state.adorned = std::move(retry->adorned);
          state.classification = std::move(retry->classification);
          applied = true;
          break;
        }
      }
    }
    if (applied) NoteShapes(state);
    return applied ? PassOutcome::kApplied : PassOutcome::kSkipped;
  }

 private:
  bool try_static_reduction_;
};

class MagicPass : public Transform {
 public:
  const char* name() const override { return "magic-sets"; }
  Status CheckPreconditions(const TransformState& state) const override {
    if (!state.adorned.has_value()) {
      return Status::FailedPrecondition("program is not adorned yet");
    }
    if (state.magic.has_value()) {
      return Status::FailedPrecondition("Magic Sets already applied");
    }
    return Status::OK();
  }
  Result<PassOutcome> Apply(TransformState& state) override {
    FACTLOG_ASSIGN_OR_RETURN(state.magic, transform::MagicSets(*state.adorned));
    state.Note("magic program has " +
               std::to_string(state.magic->program.rules().size()) + " rules");
    return PassOutcome::kApplied;
  }
};

class SupplementaryMagicPass : public Transform {
 public:
  const char* name() const override { return "supplementary-magic"; }
  Status CheckPreconditions(const TransformState& state) const override {
    if (!state.adorned.has_value()) {
      return Status::FailedPrecondition("program is not adorned yet");
    }
    if (state.supplementary.has_value()) {
      return Status::FailedPrecondition("supplementary magic already applied");
    }
    return Status::OK();
  }
  Result<PassOutcome> Apply(TransformState& state) override {
    FACTLOG_ASSIGN_OR_RETURN(state.supplementary,
                             transform::SupplementaryMagicSets(*state.adorned));
    state.Note("supplementary magic program has " +
               std::to_string(state.supplementary->program.rules().size()) +
               " rules");
    return PassOutcome::kApplied;
  }
};

class CountingPass : public Transform {
 public:
  const char* name() const override { return "counting"; }
  Status CheckPreconditions(const TransformState& state) const override {
    if (!state.adorned.has_value() || !state.classification.has_value()) {
      return Status::FailedPrecondition(
          "program is not adorned and classified yet");
    }
    return Status::OK();
  }
  Result<PassOutcome> Apply(TransformState& state) override {
    FACTLOG_ASSIGN_OR_RETURN(
        state.counting,
        transform::CountingTransform(*state.adorned, *state.classification));
    state.Note("counting predicates: " + state.counting->cnt_name + ", " +
               state.counting->ans_name);
    return PassOutcome::kApplied;
  }
};

class LinearRewritePass : public Transform {
 public:
  const char* name() const override { return "linear-rewrite"; }
  Status CheckPreconditions(const TransformState& state) const override {
    if (!state.adorned.has_value() || !state.classification.has_value()) {
      return Status::FailedPrecondition(
          "program is not adorned and classified yet");
    }
    return Status::OK();
  }
  Result<PassOutcome> Apply(TransformState& state) override {
    auto right =
        transform::RewriteRightLinear(*state.adorned, *state.classification);
    if (right.ok()) {
      state.linear = std::move(right).value();
      state.Note("right-linear direct rewriting (§6.3) applied");
      return PassOutcome::kApplied;
    }
    auto left =
        transform::RewriteLeftLinear(*state.adorned, *state.classification);
    if (left.ok()) {
      state.linear = std::move(left).value();
      state.Note("left-linear direct rewriting (§6.3) applied");
      return PassOutcome::kApplied;
    }
    return Status::FailedPrecondition(
        "no direct linear rewriting applies (right-linear: " +
        right.status().message() + "; left-linear: " + left.status().message() +
        ")");
  }
};

class FactorabilityGatePass : public Transform {
 public:
  const char* name() const override { return "factorability"; }
  Status CheckPreconditions(const TransformState& state) const override {
    if (!state.classification.has_value()) {
      return Status::FailedPrecondition("program is not classified yet");
    }
    return Status::OK();
  }
  Result<PassOutcome> Apply(TransformState& state) override {
    if (!state.classification->rlc_stable) {
      state.Note("not RLC-stable: " + state.classification->diagnostic);
      return PassOutcome::kHalt;
    }
    FACTLOG_ASSIGN_OR_RETURN(state.factorability,
                             CheckFactorability(*state.classification));
    state.Note(std::string("factorability: ") +
               FactorClassToString(state.factorability->cls));
    if (!state.factorability->factorable()) {
      for (const std::string& f : state.factorability->failures) {
        state.Note("  " + f);
      }
      return PassOutcome::kHalt;
    }
    return PassOutcome::kApplied;
  }
};

class FactoringPass : public Transform {
 public:
  const char* name() const override { return "factoring"; }
  Status CheckPreconditions(const TransformState& state) const override {
    if (!state.magic.has_value() || !state.adorned.has_value()) {
      return Status::FailedPrecondition("Magic program is not available");
    }
    if (!state.factorability.has_value() ||
        !state.factorability->factorable()) {
      return Status::FailedPrecondition(
          "factorability has not been established");
    }
    return Status::OK();
  }
  Result<PassOutcome> Apply(TransformState& state) override {
    // Factor p^a into bp(bound args) and fp(free args) in the Magic program
    // (Theorems 4.1-4.3).
    const analysis::AdornedPredicate& ap =
        state.adorned->predicates().begin()->second;
    FactorSplit split;
    split.predicate = ap.Name();
    split.part1 = ap.adornment.BoundPositions();
    split.part2 = ap.adornment.FreePositions();
    split.name1 = "b" + ap.base;
    split.name2 = "f" + ap.base;
    FACTLOG_ASSIGN_OR_RETURN(
        FactoredProgram factored,
        FactorTransform(state.magic->program, state.magic->query, split));
    state.factored = std::move(factored);
    state.factoring_applied = true;
    state.opt_ctx.bp = state.factored->split.name1;
    state.opt_ctx.fp = state.factored->split.name2;
    state.opt_ctx.magic_pred = state.magic->magic_names.at(split.predicate);
    state.opt_ctx.seed_args = state.magic->seed.args();
    state.opt_ctx.query_pred = state.factored->query.predicate();
    state.Note("factored " + split.predicate + " into " +
               state.factored->split.name1 + "(bound) and " +
               state.factored->split.name2 + "(free)");
    return PassOutcome::kApplied;
  }
};

// One §5 cleanup step expressed as a pass over `state.optimized`
// (initialized from the factored program on first use).
class CleanupPass : public Transform {
 public:
  using Fn = std::function<Result<bool>(TransformState&)>;
  CleanupPass(std::string name, Fn fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}
  const char* name() const override { return name_.c_str(); }
  Status CheckPreconditions(const TransformState& state) const override {
    if (!state.optimized.has_value() && !state.factored.has_value()) {
      return Status::FailedPrecondition("no factored program to clean up");
    }
    return Status::OK();
  }
  Result<PassOutcome> Apply(TransformState& state) override {
    if (!state.optimized.has_value()) {
      state.optimized = state.factored->program;
      state.optimized->set_query(state.factored->query);
    }
    FACTLOG_ASSIGN_OR_RETURN(bool changed, fn_(state));
    return changed ? PassOutcome::kApplied : PassOutcome::kSkipped;
  }

 private:
  std::string name_;
  Fn fn_;
};

class FixpointPass : public Transform {
 public:
  FixpointPass(std::string name, PassSequence children, int max_rounds)
      : name_(std::move(name)),
        children_(std::move(children)),
        max_rounds_(max_rounds) {}
  const char* name() const override { return name_.c_str(); }
  Status CheckPreconditions(const TransformState& state) const override {
    for (const std::unique_ptr<Transform>& child : children_) {
      FACTLOG_RETURN_IF_ERROR(child->CheckPreconditions(state));
    }
    return Status::OK();
  }
  Result<PassOutcome> Apply(TransformState& state) override {
    bool any = false;
    int rounds = 0;
    for (; rounds < max_rounds_; ++rounds) {
      bool changed = false;
      for (const std::unique_ptr<Transform>& child : children_) {
        FACTLOG_RETURN_IF_ERROR(child->CheckPreconditions(state));
        FACTLOG_ASSIGN_OR_RETURN(PassOutcome outcome, child->Apply(state));
        if (outcome == PassOutcome::kApplied) changed = true;
      }
      any |= changed;
      if (!changed) break;
    }
    state.Note("fixpoint after " + std::to_string(rounds + 1) + " round(s)");
    return any ? PassOutcome::kApplied : PassOutcome::kSkipped;
  }

 private:
  std::string name_;
  PassSequence children_;
  int max_rounds_;
};

}  // namespace

std::unique_ptr<Transform> MakeAdornPass() {
  return std::make_unique<AdornPass>();
}
std::unique_ptr<Transform> MakeClassifyPass() {
  return std::make_unique<ClassifyPass>();
}
std::unique_ptr<Transform> MakeNormalizePass(bool try_static_reduction) {
  return std::make_unique<NormalizePass>(try_static_reduction);
}
std::unique_ptr<Transform> MakeMagicPass() {
  return std::make_unique<MagicPass>();
}
std::unique_ptr<Transform> MakeSupplementaryMagicPass() {
  return std::make_unique<SupplementaryMagicPass>();
}
std::unique_ptr<Transform> MakeCountingPass() {
  return std::make_unique<CountingPass>();
}
std::unique_ptr<Transform> MakeLinearRewritePass() {
  return std::make_unique<LinearRewritePass>();
}
std::unique_ptr<Transform> MakeFactorabilityGatePass() {
  return std::make_unique<FactorabilityGatePass>();
}
std::unique_ptr<Transform> MakeFactoringPass() {
  return std::make_unique<FactoringPass>();
}

std::unique_ptr<Transform> MakeHeadInBodyPass() {
  return std::make_unique<CleanupPass>(
      "prop-5.4-head-in-body", [](TransformState& s) -> Result<bool> {
        return DeleteHeadInBodyRules(&*s.optimized);
      });
}
std::unique_ptr<Transform> MakeSubsumedMagicPass() {
  return std::make_unique<CleanupPass>(
      "prop-5.1-subsumed-magic", [](TransformState& s) -> Result<bool> {
        return DeleteSubsumedMagicLiterals(&*s.optimized, s.opt_ctx);
      });
}
std::unique_ptr<Transform> MakeAnonymizePass() {
  return std::make_unique<CleanupPass>(
      "prop-5.5-anonymize", [](TransformState& s) -> Result<bool> {
        return AnonymizeSingletonVariables(&*s.optimized);
      });
}
std::unique_ptr<Transform> MakeAnonymousFactorPass() {
  return std::make_unique<CleanupPass>(
      "prop-5.2-anonymous-factor", [](TransformState& s) -> Result<bool> {
        return DeleteAnonymousFactorLiterals(&*s.optimized, s.opt_ctx);
      });
}
std::unique_ptr<Transform> MakeSeedFactorPass() {
  return std::make_unique<CleanupPass>(
      "prop-5.3-seed-factor", [](TransformState& s) -> Result<bool> {
        return DeleteSeedFactorLiterals(&*s.optimized, s.opt_ctx);
      });
}
std::unique_ptr<Transform> MakeDuplicateRulePass() {
  return std::make_unique<CleanupPass>(
      "dedup-rules", [](TransformState& s) -> Result<bool> {
        return DeleteDuplicateRules(&*s.optimized);
      });
}
std::unique_ptr<Transform> MakeUnreachablePass() {
  return std::make_unique<CleanupPass>(
      "prop-5.4-unreachable", [](TransformState& s) -> Result<bool> {
        if (s.opt_ctx.query_pred.empty()) return false;
        return DeleteUnreachableRules(&*s.optimized, s.opt_ctx.query_pred);
      });
}
std::unique_ptr<Transform> MakeUniformEquivalencePass(OptimizeOptions opts) {
  return std::make_unique<CleanupPass>(
      "uniform-equivalence", [opts](TransformState& s) -> Result<bool> {
        return DeleteUniformlyRedundantRules(&*s.optimized, opts);
      });
}

namespace {

class JoinPlanPass : public Transform {
 public:
  explicit JoinPlanPass(plan::PlanOptions opts) : opts_(std::move(opts)) {}
  const char* name() const override { return "join-plan"; }
  Result<PassOutcome> Apply(TransformState& state) override {
    const ast::Program& program = state.final_program();
    state.plans = plan::PlanProgram(program, opts_);
    for (size_t i = 0; i < state.plans->rules.size(); ++i) {
      const plan::JoinPlan& jp = state.plans->rules[i];
      if (jp.order.empty()) continue;  // facts need no plan
      state.Note("rule " + std::to_string(i) + ": " + jp.Summary() +
                 (jp.reordered ? " (reordered)" : ""));
    }
    return PassOutcome::kApplied;
  }

 private:
  plan::PlanOptions opts_;
};

}  // namespace

std::unique_ptr<Transform> MakeLintPass(analysis::LintOptions opts) {
  return std::make_unique<LintPass>(std::move(opts));
}

std::unique_ptr<Transform> MakeJoinPlanPass(plan::PlanOptions opts) {
  return std::make_unique<JoinPlanPass>(std::move(opts));
}

std::unique_ptr<Transform> MakeFixpointPass(PassSequence children,
                                            int max_rounds) {
  return std::make_unique<FixpointPass>("fixpoint", std::move(children),
                                        max_rounds);
}

std::unique_ptr<Transform> MakeSectionFiveFixpointPass(
    const OptimizeOptions& opts) {
  // Child order matches the fixpoint loop OptimizeProgram runs, so the pass
  // sequence reproduces the paper's final programs verbatim.
  PassSequence children;
  if (opts.apply_head_in_body) children.push_back(MakeHeadInBodyPass());
  if (opts.apply_prop_5_1) children.push_back(MakeSubsumedMagicPass());
  if (opts.apply_anonymize) children.push_back(MakeAnonymizePass());
  if (opts.apply_prop_5_2) children.push_back(MakeAnonymousFactorPass());
  if (opts.apply_prop_5_3) children.push_back(MakeSeedFactorPass());
  if (opts.apply_duplicates) children.push_back(MakeDuplicateRulePass());
  if (opts.apply_unreachable) children.push_back(MakeUnreachablePass());
  if (opts.apply_uniform_equivalence) {
    children.push_back(MakeUniformEquivalencePass(opts));
  }
  return std::make_unique<FixpointPass>("section-5-cleanups",
                                        std::move(children), 100);
}

}  // namespace factlog::core
